//! The sharded engine fleet — M independent deployments on a fixed thread pool.
//!
//! One [`crate::QueryEngine`] is one venue: a single Network + Workload substrate
//! whose epoch loop is inherently serial (every session's protocol sweep mutates the
//! same field).  The "millions of users" story is therefore not one giant loop but
//! many tenants × many deployments: a hotel chain monitors every property, a facility
//! operator every floor, each with its own sensor field and its own query mix.
//! [`EngineFleet`] models exactly that — M engines ("deployments", addressed by
//! [`DeploymentId`]) driven concurrently by a fixed pool of `std::thread` workers,
//! with session routing by deployment id and a fleet-level admission cap layered over
//! each engine's own.
//!
//! ## The determinism contract (ADR-006)
//!
//! Deployments share **no** mutable state: each engine owns its substrate, its
//! workload stream, its loss-RNG streams and its window bank outright, and every one
//! of those derives its randomness from the deployment's own master seed.  The pool
//! only decides *when* a shard's epoch loop runs, never *what* it computes, so:
//!
//! > every deployment in a fleet is **byte-identical** — per-session answers and
//! > attributed metrics ledgers alike — to a solo [`crate::QueryEngine`] built from
//! > the same substrate and seeds and driven through the same registration sequence,
//! > regardless of the pool size or how the scheduler interleaves the shards.
//!
//! That is the `engine_cells` guarantee applied per shard, asserted cell-by-cell by
//! `tests/fleet_cells.rs` and under concurrent register/poll/cancel churn by
//! `tests/fleet_spike_concurrency.rs`.
//!
//! ## Locking discipline
//!
//! Each shard is one `Arc<Mutex<EngineCore>>` — the same cell a solo engine uses, so
//! [`crate::Session`] handles work identically whether their engine runs solo or in a
//! fleet.  Fleet methods that need a cross-shard view ([`EngineFleet::register`]'s
//! admission check, [`EngineFleet::active_sessions`]) take the shard locks in
//! ascending deployment order, which rules out lock-order inversions; per-shard epoch
//! jobs take exactly one lock each.  A panic inside a shard's epoch loop poisons that
//! shard alone — the other deployments keep serving — and the panic is re-raised on
//! the thread that called [`EngineFleet::run_epochs`], never swallowed.

use crate::config::ScenarioConfig;
use crate::engine::{lock_core, try_lock_core, EngineCore, QueryEngine, Session};
use crate::server::WorkloadSpec;
use kspot_net::NetworkConfig;
use kspot_query::plan::classify;
use kspot_query::{parse, QueryError};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Index of a deployment (shard) within a fleet.  Assigned densely from 0 in the
/// order the engines were handed to [`EngineFleet::from_engines`].
pub type DeploymentId = usize;

/// Health of one deployment's state cell, as reported by
/// [`EngineFleet::shard_health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// The shard serves normally.
    Healthy,
    /// The shard's state cell is poisoned: a prior operation panicked mid-epoch and
    /// its sessions/metrics are unrecoverable (ADR-006).  The rest of the fleet keeps
    /// serving; requests routed here fail with [`FleetError::Unhealthy`].
    Poisoned,
}

/// Which admission cap refused a registration (see [`FleetError::Rejected`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionScope {
    /// The fleet-wide cap ([`EngineFleet::max_total_sessions`]).
    Fleet,
    /// The target deployment's own per-engine cap.
    Deployment(DeploymentId),
}

/// The typed error surface of [`EngineFleet::try_register`] — what a front-end needs
/// to map failures onto distinct wire responses (ADR-007): admission overflow is a
/// 429-style rejection, a poisoned shard a 503-style outage, and everything else a
/// plain bad request.  [`EngineFleet::register`] flattens this back into
/// [`QueryError`] for in-process callers.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// The deployment id is out of range for this fleet (a routing error).
    UnknownDeployment {
        /// The id the caller asked for.
        deployment: DeploymentId,
        /// How many deployments this fleet serves (ids are `0..deployments`).
        deployments: usize,
    },
    /// Admission control refused the session: a cap is full.  Retry after other
    /// sessions complete or are cancelled (429-style).
    Rejected {
        /// Which cap refused.
        scope: AdmissionScope,
        /// Active sessions counted against that cap.
        active: usize,
        /// The cap itself.
        cap: usize,
    },
    /// The target deployment's state cell is poisoned; only this shard is affected
    /// (503-style).
    Unhealthy {
        /// The poisoned deployment.
        deployment: DeploymentId,
    },
    /// The SQL failed to parse, validate or classify, or the engine refused the plan.
    Query(QueryError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::UnknownDeployment { deployment, deployments } => write!(
                f,
                "unknown deployment id {deployment}: this fleet serves deployments \
                 0..{deployments}"
            ),
            FleetError::Rejected { scope: AdmissionScope::Fleet, active, cap } => write!(
                f,
                "fleet admission rejected: {active} concurrent sessions (fleet cap {cap})"
            ),
            FleetError::Rejected { scope: AdmissionScope::Deployment(d), active, cap } => write!(
                f,
                "admission rejected: deployment {d} already serves {active} concurrent \
                 queries (cap {cap})"
            ),
            FleetError::Unhealthy { deployment } => write!(
                f,
                "deployment {deployment} is unavailable: its state cell is poisoned \
                 (a prior operation panicked mid-epoch, ADR-006)"
            ),
            FleetError::Query(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for FleetError {
    fn from(e: QueryError) -> Self {
        FleetError::Query(e)
    }
}

// ---------------------------------------------------------------------------------
// the worker pool
// ---------------------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when a job is queued or shutdown begins.
    available: Condvar,
}

/// A fixed pool of named worker threads draining one FIFO job queue.  Deliberately
/// minimal (the workspace is hermetic — no rayon/tokio): jobs are boxed closures,
/// waiting is by condvar, and shutdown drains nothing — `Drop` wakes every worker and
/// joins it after the queue runs dry.
struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    fn new(threads: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState { jobs: VecDeque::new(), shutdown: false }),
            available: Condvar::new(),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("kspot-fleet-{i}"))
                    .spawn(move || Self::work(shared))
                    .expect("spawn a fleet worker thread")
            })
            .collect();
        Self { shared, workers }
    }

    fn work(shared: Arc<PoolShared>) {
        loop {
            let job = {
                let mut state = shared.state.lock().expect("fleet pool queue poisoned");
                loop {
                    if let Some(job) = state.jobs.pop_front() {
                        break job;
                    }
                    if state.shutdown {
                        return;
                    }
                    state = shared.available.wait(state).expect("fleet pool queue poisoned");
                }
            };
            // A panicking job poisons only what it holds (its shard); the worker
            // itself must survive to serve the other deployments, so the panic is
            // caught here and re-raised on the batch's waiting thread instead.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        }
    }

    fn submit(&self, job: Job) {
        let mut state = self.shared.state.lock().expect("fleet pool queue poisoned");
        state.jobs.push_back(job);
        drop(state);
        self.shared.available.notify_one();
    }

    fn threads(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("fleet pool queue poisoned");
            state.shutdown = true;
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            // A worker that panicked already surfaced its payload through the batch
            // tracker; the join result carries nothing new.
            let _ = worker.join();
        }
    }
}

/// Tracks one `run_epochs` dispatch: a countdown of outstanding shard jobs plus the
/// first panic payload any of them raised.
struct Batch {
    outstanding: Mutex<(usize, Option<Box<dyn std::any::Any + Send>>)>,
    done: Condvar,
}

impl Batch {
    fn new(jobs: usize) -> Arc<Self> {
        Arc::new(Self { outstanding: Mutex::new((jobs, None)), done: Condvar::new() })
    }

    fn finish_one(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut state = self.outstanding.lock().expect("fleet batch tracker poisoned");
        state.0 -= 1;
        if state.1.is_none() {
            state.1 = panic;
        }
        if state.0 == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every job finished, then re-raises the first shard panic (if any)
    /// on the calling thread.
    fn wait(&self) {
        let mut state = self.outstanding.lock().expect("fleet batch tracker poisoned");
        while state.0 > 0 {
            state = self.done.wait(state).expect("fleet batch tracker poisoned");
        }
        if let Some(payload) = state.1.take() {
            drop(state);
            std::panic::resume_unwind(payload);
        }
    }
}

// ---------------------------------------------------------------------------------
// the fleet
// ---------------------------------------------------------------------------------

/// M independent engine deployments driven by a fixed thread pool (module docs).
///
/// The fleet is `Send + Sync`: registration, polling and cancellation can hit it from
/// many client threads while the pool advances the shards — the concurrency regime
/// `tests/fleet_spike_concurrency.rs` exercises.
pub struct EngineFleet {
    shards: Vec<Arc<Mutex<EngineCore>>>,
    pool: ThreadPool,
    max_total_sessions: usize,
}

impl EngineFleet {
    /// Default fleet-level cap on concurrently active sessions across all
    /// deployments (each engine's own [`QueryEngine::DEFAULT_MAX_SESSIONS`] still
    /// applies per shard underneath).
    pub const DEFAULT_MAX_TOTAL_SESSIONS: usize = 256;

    /// Assembles a fleet from explicitly built engines — the entry point for test
    /// harnesses that construct faulted substrates per deployment.  Deployment ids
    /// are assigned densely in vector order; `threads` is clamped to at least 1 (the
    /// pool is fixed for the fleet's lifetime).
    ///
    /// The engines are consumed: the fleet owns their state cells from here on.
    /// [`Self::deployment`] hands back per-shard [`QueryEngine`] handles sharing
    /// those same cells.
    pub fn from_engines(engines: Vec<QueryEngine>, threads: usize) -> Self {
        assert!(!engines.is_empty(), "a fleet needs at least one deployment");
        Self {
            shards: engines.into_iter().map(|e| e.core_handle()).collect(),
            pool: ThreadPool::new(threads),
            max_total_sessions: Self::DEFAULT_MAX_TOTAL_SESSIONS,
        }
    }

    /// Boots a homogeneous fleet: `deployments` copies of the same scenario, workload
    /// and cost model, each with its **own** master seed derived via
    /// [`Self::shard_seed`] so no two deployments share a single random draw.  The
    /// solo twin of deployment `d` is `QueryEngine::from_config` (via
    /// [`crate::KSpotServer::engine`]) over the same config with
    /// `shard_seed(master_seed, d)`.
    pub fn homogeneous(
        scenario: ScenarioConfig,
        workload: WorkloadSpec,
        net_config: NetworkConfig,
        master_seed: u64,
        deployments: usize,
        threads: usize,
    ) -> Self {
        let engines = (0..deployments.max(1))
            .map(|d| {
                QueryEngine::from_config(
                    scenario.clone(),
                    workload,
                    net_config.clone(),
                    Self::shard_seed(master_seed, d),
                )
            })
            .collect();
        Self::from_engines(engines, threads)
    }

    /// The per-deployment master seed of a homogeneous fleet: an independent stream
    /// per deployment id, per the [`kspot_net::rng`] convention.  Public so byte-
    /// identity twins (solo engines) can be built outside the fleet.
    pub fn shard_seed(master_seed: u64, deployment: DeploymentId) -> u64 {
        const STREAM_FLEET_SHARD: u64 = 0x7359_000F;
        kspot_net::rng::mix_seed(master_seed, &[STREAM_FLEET_SHARD, deployment as u64])
    }

    /// Overrides the fleet-level admission cap (clamped to at least 1).
    pub fn with_max_total_sessions(mut self, max: usize) -> Self {
        self.max_total_sessions = max.max(1);
        self
    }

    /// Enables durable window checkpointing on every deployment (ADR-009): each
    /// shard gets its own independent checkpoint store with the given cadence, so
    /// `WITH HISTORY … AS OF epoch` sessions can be served on whichever deployment
    /// they are routed to (the wire front-end exposes this over TCP).
    pub fn with_checkpointing(self, cadence: u64) -> Self {
        for core in &self.shards {
            let _ = QueryEngine::from_core(Arc::clone(core)).with_checkpointing(cadence);
        }
        self
    }

    /// Number of deployments (shards).
    pub fn deployments(&self) -> usize {
        self.shards.len()
    }

    /// Number of fixed worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The fleet-level admission cap.
    pub fn max_total_sessions(&self) -> usize {
        self.max_total_sessions
    }

    /// A [`QueryEngine`] handle onto one deployment (sharing the shard's state cell),
    /// or `None` for out-of-range ids.  Everything a solo engine exposes — metrics,
    /// sessions, even `run_epochs` — works through the handle; driving a single shard
    /// by hand between fleet sweeps is allowed and stays deterministic (it is simply
    /// part of that shard's epoch history).
    pub fn deployment(&self, id: DeploymentId) -> Option<QueryEngine> {
        self.shards.get(id).map(|core| QueryEngine::from_core(Arc::clone(core)))
    }

    /// Locks every shard in ascending deployment order (the fleet's global lock
    /// order — see the module docs) and returns the guards.
    fn lock_all(&self) -> Vec<MutexGuard<'_, EngineCore>> {
        self.shards.iter().map(lock_core).collect()
    }

    /// Total sessions currently active across all deployments.
    pub fn active_sessions(&self) -> usize {
        self.lock_all().iter().map(|core| core.active_sessions()).sum()
    }

    /// Parses, classifies and admits a query onto deployment `deployment`, returning
    /// its [`Session`] handle — the same handle type a solo engine hands out, so the
    /// whole lifecycle surface (poll/stream/cancel/finalize) carries over.
    ///
    /// Admission is checked at **both** levels while all shard locks are held (in
    /// ascending order, so concurrent registrations cannot deadlock or race the cap):
    /// the fleet-wide active-session total must be under
    /// [`Self::max_total_sessions`], and the target engine applies its own per-shard
    /// cap as usual.
    pub fn register(&self, deployment: DeploymentId, sql: &str) -> Result<Session, QueryError> {
        self.try_register(deployment, sql).map_err(|e| match e {
            FleetError::Query(q) => q,
            other => QueryError::semantic(other.to_string()),
        })
    }

    /// [`Self::register`] with the typed [`FleetError`] surface a wire front-end
    /// needs: admission overflow, routing errors and poisoned shards come back as
    /// distinct variants instead of flattened message strings (ADR-007).
    ///
    /// Unlike the panic-on-poison contract of in-process handles (ADR-006), this path
    /// treats a poisoned shard as *that shard's* outage: poisoned cells are skipped
    /// when locking (their sessions can never complete, so they no longer count
    /// against the fleet cap), and targeting one yields [`FleetError::Unhealthy`]
    /// rather than tearing down the caller.
    pub fn try_register(&self, deployment: DeploymentId, sql: &str) -> Result<Session, FleetError> {
        let query = parse(sql).map_err(FleetError::Query)?;
        let plan = classify(&query).map_err(FleetError::Query)?;
        if deployment >= self.shards.len() {
            return Err(FleetError::UnknownDeployment {
                deployment,
                deployments: self.shards.len(),
            });
        }
        // Lock every *healthy* shard in ascending order (the fleet's global lock
        // order), skipping poisoned cells so one torn deployment cannot wedge
        // admission for the rest of the fleet.
        let mut guards: Vec<(DeploymentId, MutexGuard<'_, EngineCore>)> =
            Vec::with_capacity(self.shards.len());
        for (d, core) in self.shards.iter().enumerate() {
            match try_lock_core(core) {
                Some(guard) => guards.push((d, guard)),
                None if d == deployment => return Err(FleetError::Unhealthy { deployment }),
                None => {}
            }
        }
        let active: usize = guards.iter().map(|(_, core)| core.active_sessions()).sum();
        if active >= self.max_total_sessions {
            return Err(FleetError::Rejected {
                scope: AdmissionScope::Fleet,
                active,
                cap: self.max_total_sessions,
            });
        }
        let (_, target) = guards
            .iter_mut()
            .find(|(d, _)| *d == deployment)
            .expect("the target shard was locked above or reported unhealthy");
        let shard_active = target.active_sessions();
        let shard_cap = target.max_sessions();
        if shard_active >= shard_cap {
            return Err(FleetError::Rejected {
                scope: AdmissionScope::Deployment(deployment),
                active: shard_active,
                cap: shard_cap,
            });
        }
        let id =
            target.register_plan_with_sql(plan, sql.to_string()).map_err(FleetError::Query)?;
        drop(guards);
        Ok(Session::from_core(Arc::clone(&self.shards[deployment]), id))
    }

    /// Reports one deployment's health without blocking on its lock, or `None` for
    /// out-of-range ids.  A [`ShardHealth::Poisoned`] shard stays poisoned for the
    /// fleet's lifetime; front-ends should route around it (ADR-007).
    pub fn shard_health(&self, deployment: DeploymentId) -> Option<ShardHealth> {
        self.shards.get(deployment).map(|core| {
            if core.is_poisoned() {
                ShardHealth::Poisoned
            } else {
                ShardHealth::Healthy
            }
        })
    }

    /// Runs `epochs` shared epochs on **every** deployment, fanning the per-shard
    /// epoch loops across the pool and blocking until all of them finish.  Each
    /// shard's loop is exactly [`QueryEngine::run_epochs`] — acquired workload,
    /// charged substrate baseline, per-session sweeps — under its own lock, so the
    /// pool's interleaving is invisible to the results (module docs).
    ///
    /// If a shard's loop panics, the panic is re-raised here after the other shards
    /// finished; the panicking shard's state cell stays poisoned (its sessions and
    /// metrics are unrecoverable) while the rest of the fleet keeps serving.
    pub fn run_epochs(&self, epochs: usize) {
        let batch = Batch::new(self.shards.len());
        for core in &self.shards {
            let core = Arc::clone(core);
            let batch = Arc::clone(&batch);
            self.pool.submit(Box::new(move || {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    lock_core(&core).run_epochs(epochs);
                }));
                batch.finish_one(outcome.err());
            }));
        }
        batch.wait();
    }

    /// Runs `epochs` epochs on a single deployment through the pool (the other
    /// shards idle).  Useful when tenants advance at different rates.
    pub fn run_epochs_on(&self, deployment: DeploymentId, epochs: usize) {
        let core = self.shards.get(deployment).unwrap_or_else(|| {
            panic!(
                "unknown deployment id {deployment}: this fleet serves deployments 0..{}",
                self.shards.len()
            )
        });
        let batch = Batch::new(1);
        let core = Arc::clone(core);
        let tracker = Arc::clone(&batch);
        self.pool.submit(Box::new(move || {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                lock_core(&core).run_epochs(epochs);
            }));
            tracker.finish_one(outcome.err());
        }));
        batch.wait();
    }

    /// [`Self::run_epochs`] for a fleet behind a listener: instead of re-raising a
    /// shard's panic (fatal for a serving process), poisoned shards are skipped and
    /// newly-panicking ones recorded, and the sorted list of **all** currently
    /// poisoned deployment ids is returned.  Healthy shards advance exactly as they
    /// would under [`Self::run_epochs`] — same per-shard loop, same determinism.
    pub fn run_epochs_surviving(&self, epochs: usize) -> Vec<DeploymentId> {
        let mut poisoned: Vec<DeploymentId> = Vec::new();
        let mut live: Vec<DeploymentId> = Vec::new();
        for d in 0..self.shards.len() {
            if self.shards[d].is_poisoned() {
                poisoned.push(d);
            } else {
                live.push(d);
            }
        }
        let newly = Arc::new(Mutex::new(Vec::new()));
        let batch = Batch::new(live.len());
        for d in live {
            let core = Arc::clone(&self.shards[d]);
            let batch = Arc::clone(&batch);
            let newly = Arc::clone(&newly);
            self.pool.submit(Box::new(move || {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    lock_core(&core).run_epochs(epochs);
                }));
                if outcome.is_err() {
                    newly.lock().expect("fleet health tracker poisoned").push(d);
                }
                batch.finish_one(None);
            }));
        }
        batch.wait();
        poisoned.extend(newly.lock().expect("fleet health tracker poisoned").drain(..));
        poisoned.sort_unstable();
        poisoned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::KSpotServer;
    use kspot_net::RoomModelParams;

    fn fleet(deployments: usize, threads: usize) -> EngineFleet {
        EngineFleet::homogeneous(
            ScenarioConfig::conference(),
            WorkloadSpec::RoomCorrelated(RoomModelParams::default()),
            NetworkConfig::mica2(),
            7,
            deployments,
            threads,
        )
    }

    #[test]
    fn fleet_engine_and_session_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EngineFleet>();
        assert_send_sync::<QueryEngine>();
        assert_send_sync::<Session>();
    }

    #[test]
    fn every_deployment_matches_its_solo_twin() {
        let fleet = fleet(3, 2);
        let queries = [
            "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid",
            "SELECT TOP 1 roomid, MAX(sound) FROM sensors GROUP BY roomid",
        ];
        let mut fleet_sessions = Vec::new();
        for d in 0..fleet.deployments() {
            for sql in &queries {
                fleet_sessions.push((d, fleet.register(d, sql).expect("registers")));
            }
        }
        fleet.run_epochs(10);

        for d in 0..fleet.deployments() {
            let mut solo = KSpotServer::new(ScenarioConfig::conference())
                .with_seed(EngineFleet::shard_seed(7, d))
                .engine();
            let solo_sessions: Vec<Session> =
                queries.iter().map(|sql| solo.register(sql).expect("registers")).collect();
            solo.run_epochs(10);
            for (fleet_session, solo_session) in fleet_sessions
                .iter()
                .filter(|(fd, _)| *fd == d)
                .map(|(_, s)| s)
                .zip(&solo_sessions)
            {
                assert_eq!(fleet_session.results(), solo_session.results(), "deployment {d}");
                assert_eq!(fleet_session.totals(), solo_session.totals(), "deployment {d}");
            }
        }
    }

    #[test]
    fn shards_draw_independent_seeds_so_deployments_differ() {
        let fleet = fleet(2, 2);
        let a = fleet.register(0, "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid").unwrap();
        let b = fleet.register(1, "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid").unwrap();
        fleet.run_epochs(8);
        assert_ne!(
            a.results(),
            b.results(),
            "two deployments of a homogeneous fleet run distinct workload streams"
        );
        assert_ne!(EngineFleet::shard_seed(7, 0), EngineFleet::shard_seed(7, 1));
        assert_ne!(EngineFleet::shard_seed(7, 0), 7, "shard seeds never collide with the master");
    }

    #[test]
    fn fleet_cap_rejects_across_deployments_and_frees_on_cancel() {
        let fleet = fleet(2, 1).with_max_total_sessions(2);
        let mut a = fleet.register(0, "SELECT * FROM sensors").unwrap();
        let _b = fleet.register(1, "SELECT * FROM sensors").unwrap();
        let err = fleet.register(0, "SELECT * FROM sensors").unwrap_err();
        assert!(err.to_string().contains("fleet admission"), "{err}");
        assert_eq!(fleet.active_sessions(), 2);
        assert!(a.cancel());
        fleet.register(1, "SELECT * FROM sensors").expect("cancellation freed a fleet slot");
    }

    #[test]
    fn routing_rejects_unknown_deployments_before_admission() {
        let fleet = fleet(2, 1);
        let err = fleet.register(5, "SELECT * FROM sensors").unwrap_err();
        assert!(err.to_string().contains("unknown deployment id 5"), "{err}");
        assert!(fleet.deployment(5).is_none());
        assert!(fleet.register(1, "SELEKT nope").is_err(), "parse errors still propagate");
    }

    #[test]
    fn per_deployment_handles_share_the_shard_state() {
        let fleet = fleet(2, 2);
        let session = fleet.register(1, "SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid").unwrap();
        fleet.run_epochs(4);
        let handle = fleet.deployment(1).expect("in range");
        assert_eq!(handle.epochs_run(), 4);
        assert_eq!(handle.active_sessions(), 1);
        assert_eq!(handle.session(session.id()).expect("routed here").results().len(), 4);
        // The other shard advanced too (run_epochs sweeps every deployment) but holds
        // no sessions — routing never leaked the registration across shards.
        let other = fleet.deployment(0).expect("in range");
        assert_eq!(other.epochs_run(), 4);
        assert_eq!(other.session_ids().len(), 0);
    }

    #[test]
    fn run_epochs_on_advances_one_shard_only() {
        let fleet = fleet(3, 2);
        fleet.run_epochs_on(1, 5);
        fleet.run_epochs(2);
        assert_eq!(fleet.deployment(0).unwrap().epochs_run(), 2);
        assert_eq!(fleet.deployment(1).unwrap().epochs_run(), 7);
        assert_eq!(fleet.deployment(2).unwrap().epochs_run(), 2);
    }

    #[test]
    fn pool_size_never_changes_results() {
        let run = |threads: usize| {
            let fleet = fleet(4, threads);
            let sessions: Vec<Session> = (0..4)
                .map(|d| {
                    fleet
                        .register(d, "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid")
                        .expect("registers")
                })
                .collect();
            fleet.run_epochs(12);
            sessions.iter().map(|s| (s.results(), s.totals())).collect::<Vec<_>>()
        };
        let single = run(1);
        assert_eq!(single, run(2), "1-thread vs 2-thread fleets must agree");
        assert_eq!(single, run(8), "oversubscribed pools must agree too");
    }
}
