//! The KSpot server — the base station through which user requests are disseminated.
//!
//! The server owns the scenario configuration, parses the SQL-like text typed into the
//! Query Panel, classifies it ([`kspot_query::plan::classify`]), routes it to the
//! matching in-network algorithm (MINT for snapshot Top-K, TJA for historic vertically
//! fragmented Top-K, TAG for plain aggregates, …), executes it over the simulated
//! network, and produces everything the GUI panels would show: the per-epoch ranked
//! answers, the *KSpot bullets* of the Display Panel, and the System Panel with the
//! savings against the conventional acquisition baselines.

use crate::config::ScenarioConfig;
use crate::engine::QueryEngine;
use crate::fleet::EngineFleet;
use crate::panel::{StrategyReport, SystemPanel};
use kspot_algos::{CentralizedCollection, SnapshotAlgorithm, TagTopK, TopKResult};
use kspot_net::{
    Epoch, GroupId, Network, NetworkConfig, PhaseTag, RoomModelParams, Workload,
};
use kspot_query::plan::{classify, ExecutionStrategy, QueryClass, QueryPlan};
use kspot_query::{parse, QueryError};
use std::fmt;

/// Which synthetic workload drives the sensors during an execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadSpec {
    /// The constant readings of Figure 1 (only valid on the Figure-1 scenario).
    Figure1,
    /// Room-correlated activity with the given drift/noise parameters.
    RoomCorrelated(RoomModelParams),
    /// Independent random walk per node with the given step deviation.
    RandomWalk(f64),
    /// Fresh uniform values every epoch (no temporal correlation).
    UniformIid,
}

impl WorkloadSpec {
    /// Materialises the workload over a scenario's deployment (used by the server and
    /// by [`crate::engine::QueryEngine`]).
    pub(crate) fn build(&self, config: &ScenarioConfig, seed: u64) -> Workload {
        match self {
            WorkloadSpec::Figure1 => Workload::figure1(&config.deployment),
            WorkloadSpec::RoomCorrelated(params) => {
                Workload::room_correlated(&config.deployment, config.domain, *params, seed)
            }
            WorkloadSpec::RandomWalk(sigma) => {
                Workload::random_walk(&config.deployment, config.domain, *sigma, seed)
            }
            WorkloadSpec::UniformIid => Workload::uniform_iid(&config.deployment, config.domain, seed),
        }
    }
}

/// One red bullet of the Display Panel: a ranked cluster with its current value.
#[derive(Debug, Clone, PartialEq)]
pub struct KSpotBullet {
    /// 1-based rank (1 = highest).
    pub rank: usize,
    /// The ranked cluster.
    pub cluster: GroupId,
    /// The cluster's display name.
    pub cluster_name: String,
    /// The aggregate value that earned the rank.
    pub value: f64,
}

impl fmt::Display for KSpotBullet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} {} ({:.1})", self.rank, self.cluster_name, self.value)
    }
}

/// The outcome of executing one query: the routing decision, the ranked answers, and the
/// System Panel comparing KSpot against the conventional baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryExecution {
    /// The classified plan.
    pub plan: QueryPlan,
    /// The algorithm KSpot routed the query to.
    pub algorithm: String,
    /// Per-epoch ranked answers (a single entry for one-shot historic queries).
    pub results: Vec<TopKResult>,
    /// The System Panel.
    pub panel: SystemPanel,
}

impl QueryExecution {
    /// The most recent ranked answer.
    pub fn latest(&self) -> Option<&TopKResult> {
        self.results.last()
    }
}

/// One entry of a batch submission: the SQL text plus the number of epochs to run the
/// continuous strategies for (see [`KSpotServer::submit`] for the `epochs` semantics).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchQuery {
    /// The Query Panel SQL.
    pub sql: String,
    /// Epochs to run continuous strategies for (ignored by one-shot historic queries).
    pub epochs: usize,
}

impl BatchQuery {
    /// Creates a batch entry.
    pub fn new(sql: impl Into<String>, epochs: usize) -> Self {
        Self { sql: sql.into(), epochs }
    }
}

/// How [`KSpotServer::submit_batch`] schedules the independent executions of a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchMode {
    /// One execution after another on the calling thread.
    Serial,
    /// Executions fan out across the available cores with `std::thread::scope`.
    /// Every execution is self-contained and deterministic in the server seed, so the
    /// returned vector is byte-identical to [`BatchMode::Serial`]'s, in request order.
    Parallel,
}

/// The KSpot base station.
#[derive(Debug, Clone)]
pub struct KSpotServer {
    scenario: ScenarioConfig,
    workload: WorkloadSpec,
    net_config: NetworkConfig,
    seed: u64,
    lazy_baselines: bool,
}

impl KSpotServer {
    /// Boots a server for a scenario with the default (room-correlated) workload and the
    /// MICA2 cost model.
    pub fn new(scenario: ScenarioConfig) -> Self {
        Self {
            scenario,
            workload: WorkloadSpec::RoomCorrelated(RoomModelParams::default()),
            net_config: NetworkConfig::mica2(),
            seed: 0,
            lazy_baselines: false,
        }
    }

    /// Selects the workload driving the sensors.
    pub fn with_workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = workload;
        self
    }

    /// Selects the network cost model.
    pub fn with_network_config(mut self, config: NetworkConfig) -> Self {
        self.net_config = config;
        self
    }

    /// Sets the random seed for reproducible executions.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Opts into lazy baselines: [`Self::submit`] then executes only the algorithm the
    /// query is routed to, skipping the TAG / centralized / per-epoch-collection
    /// comparison runs, and the returned [`SystemPanel`] has no baselines.  Use this
    /// when the caller wants answers, not savings read-outs — it cuts the work of a
    /// snapshot submission to roughly a third.
    pub fn with_lazy_baselines(mut self, lazy: bool) -> Self {
        self.lazy_baselines = lazy;
        self
    }

    /// The configured scenario.
    pub fn scenario(&self) -> &ScenarioConfig {
        &self.scenario
    }

    /// Boots a long-lived multi-query engine sharing this server's scenario, workload,
    /// cost model and seed — the primary interface for serving many concurrent queries
    /// over one live substrate (see [`QueryEngine`]).
    pub fn engine(&self) -> QueryEngine {
        QueryEngine::from_config(
            self.scenario.clone(),
            self.workload,
            self.net_config.clone(),
            self.seed,
        )
    }

    /// Boots a sharded engine fleet: `deployments` independent copies of this server's
    /// scenario and workload — each with its own master seed derived from the server's
    /// via [`EngineFleet::shard_seed`] — driven by a fixed pool of `threads` workers.
    /// Sessions are routed by deployment id; see [`EngineFleet`] and ADR-006 for the
    /// per-shard byte-identity contract.
    pub fn fleet(&self, deployments: usize, threads: usize) -> EngineFleet {
        EngineFleet::homogeneous(
            self.scenario.clone(),
            self.workload,
            self.net_config.clone(),
            self.seed,
            deployments,
            threads,
        )
    }

    fn fresh_network(&self) -> Network {
        // The server's seed is a master seed; each component gets its own derived
        // stream (see the seeding convention in `kspot_net::rng`).
        let config = self.net_config.clone().with_seed(kspot_net::rng::substrate_seed(self.seed));
        Network::new(self.scenario.deployment.clone(), config)
    }

    fn fresh_workload(&self) -> Workload {
        self.workload.build(&self.scenario, kspot_net::rng::workload_seed(self.seed))
    }

    /// Turns a ranked answer into the Display Panel's bullets.
    pub fn bullets(&self, result: &TopKResult) -> Vec<KSpotBullet> {
        result
            .items
            .iter()
            .enumerate()
            .map(|(i, item)| KSpotBullet {
                rank: i + 1,
                cluster: item.key as GroupId,
                cluster_name: self.scenario.cluster_name(item.key as GroupId),
                value: item.value,
            })
            .collect()
    }

    /// Parses, classifies, routes and executes a query.
    ///
    /// `epochs` is the number of epochs a *continuous* strategy (snapshot Top-K, plain
    /// aggregation, raw collection, node monitoring) runs for, and must be positive for
    /// those queries.  One-shot `WITH HISTORY` queries ignore `epochs` entirely: they
    /// answer once from the sliding windows, whose length comes from the WITH HISTORY
    /// clause, so the single result they return is neither capped nor repeated by
    /// `epochs`.
    ///
    /// This is a one-shot compatibility facade over the [`QueryEngine`]'s unified
    /// [`crate::Session`] API: each call boots an engine, registers the query as its
    /// only session (continuous **and** historic queries alike), runs the loop to
    /// completion and finalizes the session — plus the System-Panel baseline runs the
    /// engine itself never executes.  It is deprecated because a per-call engine
    /// rebuilds the whole substrate for every query; register a [`crate::Session`] on
    /// a long-lived [`Self::engine`] instead so the substrate, its per-epoch cost and
    /// the shared sliding windows are amortised across queries.
    #[deprecated(
        since = "0.1.0",
        note = "register a Session on KSpotServer::engine() instead; submit boots a \
                throwaway single-session engine per call"
    )]
    pub fn submit(&self, sql: &str, epochs: usize) -> Result<QueryExecution, QueryError> {
        let query = parse(sql)?;
        let plan = classify(&query)?;
        match plan.class() {
            QueryClass::Continuous => {
                if epochs == 0 {
                    return Err(QueryError::semantic(
                        "a continuous query needs epochs > 0 (an empty execution answers nothing); \
                         only one-shot WITH HISTORY queries ignore the epoch count",
                    ));
                }
                self.run_continuous_via_engine(plan, epochs)
            }
            QueryClass::Historic => self.run_historic_via_engine(plan),
        }
    }

    /// Executes a batch of independent submissions, returning one outcome per request
    /// in request order.  [`BatchMode::Parallel`] fans the executions across the
    /// available cores with `std::thread::scope`; every execution derives its own
    /// substrate from the server seed, so the outcomes are byte-identical to
    /// [`BatchMode::Serial`]'s regardless of scheduling.
    ///
    /// Deprecated alongside [`Self::submit`]: each request still pays a full
    /// substrate rebuild.  Register the queries as [`crate::Session`]s on one shared
    /// [`Self::engine`] when they can share a substrate; keep `submit_batch` only for
    /// genuinely independent offline executions that need core-level parallelism.
    #[deprecated(
        since = "0.1.0",
        note = "register Sessions on one shared KSpotServer::engine() instead; the batch \
                facade rebuilds the substrate per request"
    )]
    #[allow(deprecated)]
    pub fn submit_batch(
        &self,
        requests: &[BatchQuery],
        mode: BatchMode,
    ) -> Vec<Result<QueryExecution, QueryError>> {
        let workers = match mode {
            BatchMode::Serial => 1,
            BatchMode::Parallel => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(requests.len().max(1)),
        };
        if workers <= 1 {
            return requests.iter().map(|r| self.submit(&r.sql, r.epochs)).collect();
        }
        let chunk = requests.len().div_ceil(workers);
        let mut out: Vec<Option<Result<QueryExecution, QueryError>>> =
            (0..requests.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (reqs, slots) in requests.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (req, slot) in reqs.iter().zip(slots.iter_mut()) {
                        *slot = Some(self.submit(&req.sql, req.epochs));
                    }
                });
            }
        });
        out.into_iter().map(|slot| slot.expect("every batch slot is filled")).collect()
    }

    /// Runs one continuous query as the only [`crate::Session`] of a throwaway
    /// [`QueryEngine`] and, unless lazy baselines are selected, executes the
    /// conventional acquisition baselines the System Panel compares against.
    fn run_continuous_via_engine(
        &self,
        plan: QueryPlan,
        epochs: usize,
    ) -> Result<QueryExecution, QueryError> {
        // A LIFETIME clause bounds the query itself; clamp the whole execution —
        // engine run, report span and baseline runs alike — to it, so the System
        // Panel always compares strategies over the same number of epochs.
        let epochs = match plan.lifetime_epochs {
            Some(lifetime) => epochs.min(lifetime as usize),
            None => epochs,
        };
        let mut engine = self.engine();
        let session = engine.register_plan(plan)?;
        engine.run_epochs(epochs);
        let kspot_report =
            StrategyReport::from_metrics(session.algorithm(), &engine.metrics(), epochs);
        let baselines = if self.lazy_baselines {
            Vec::new()
        } else {
            self.baseline_reports(&session.plan(), epochs)?
        };
        let mut execution = session.finalize();
        // The one-shot facade reports whole-run metrics (the engine served exactly
        // this query) and the comparison runs the engine itself never executes.
        execution.panel.kspot = kspot_report;
        execution.panel.baselines = baselines;
        Ok(execution)
    }

    /// Runs one `WITH HISTORY` query as a [`crate::Session`] of a throwaway
    /// [`QueryEngine`]: the engine buffers the shared sliding windows for the span of
    /// the query, the session answers once from them and completes.  Unless lazy
    /// baselines are selected, the conventional historic comparison strategies run as
    /// baseline *sessions* inside the same shared epoch loop — each under its own
    /// metrics scope, answering from the very windows the primary session answers
    /// from.  (They used to run as dedicated replays over a fresh network plus a
    /// per-submission dataset collection; the baseline-session path kills that last
    /// solo-replay holdout, and bench E17 prices the difference.)
    fn run_historic_via_engine(&self, plan: QueryPlan) -> Result<QueryExecution, QueryError> {
        let window = plan.history_epochs.ok_or_else(|| {
            QueryError::semantic("a historic query needs a WITH HISTORY window")
        })? as usize;
        let mut engine = self.engine();
        let session = engine.register_plan(plan)?;
        let baseline_ids = if self.lazy_baselines {
            Vec::new()
        } else {
            engine.register_historic_baselines(&session.plan())?
        };
        engine.run_epochs(window);
        // Every report on the panel — the primary session's and the baselines' —
        // is a *scoped* slice of the one shared ledger: each strategy's own radio,
        // CPU and storage work, without the per-epoch substrate baseline or the
        // shared window maintenance (genuinely shared infrastructure, attributable
        // to no single strategy).  Booking the whole engine ledger against TJA
        // alone would skew the savings read-out.
        let baselines = {
            let metrics = engine.metrics();
            baseline_ids
                .into_iter()
                .map(|(name, id)| StrategyReport::from_scope(name, &metrics, id, window))
                .collect()
        };
        let mut execution = session.finalize();
        execution.panel.kspot.name = execution.algorithm.clone();
        execution.panel.baselines = baselines;
        Ok(execution)
    }

    /// Runs a conventional-acquisition comparison strategy over a fresh copy of the
    /// same scenario/workload/seed and reports its costs.
    fn run_snapshot<A: SnapshotAlgorithm>(
        &self,
        algo: &mut A,
        epochs: usize,
    ) -> (Vec<TopKResult>, StrategyReport) {
        let mut net = self.fresh_network();
        let mut workload = self.fresh_workload();
        let results = kspot_algos::run_continuous(algo, &mut net, &mut workload, epochs);
        let report = StrategyReport::from_metrics(algo.name(), net.metrics(), epochs);
        (results, report)
    }

    /// The System Panel baselines of a continuous strategy, per the paper: TAG and
    /// centralized collection for snapshot Top-K, centralized collection for plain
    /// aggregation, per-epoch collection for node monitoring, none for raw collection
    /// (it is its own baseline).
    fn baseline_reports(
        &self,
        plan: &QueryPlan,
        epochs: usize,
    ) -> Result<Vec<StrategyReport>, QueryError> {
        Ok(match plan.strategy {
            ExecutionStrategy::SnapshotTopK => {
                let spec = crate::engine::continuous_spec(&self.scenario, plan)?;
                let (_, tag_report) = self.run_snapshot(&mut TagTopK::new(spec), epochs);
                let (_, central_report) =
                    self.run_snapshot(&mut CentralizedCollection::new(spec), epochs);
                vec![tag_report, central_report]
            }
            ExecutionStrategy::InNetworkAggregate => {
                let spec = crate::engine::continuous_spec(&self.scenario, plan)?;
                let (_, central_report) =
                    self.run_snapshot(&mut CentralizedCollection::new(spec), epochs);
                vec![central_report]
            }
            ExecutionStrategy::NodeMonitoringTopK => {
                // Baseline: every node reports its reading to the sink every epoch.
                let mut base_net = self.fresh_network();
                let mut workload = self.fresh_workload();
                for e in 0..epochs as Epoch {
                    base_net.begin_epoch(e);
                    for r in workload.next_epoch() {
                        base_net.unicast_up(r.node, e, 1, PhaseTag::Update);
                    }
                }
                vec![StrategyReport::from_metrics(
                    "per-epoch collection",
                    base_net.metrics(),
                    epochs,
                )]
            }
            _ => Vec::new(),
        })
    }

}

#[cfg(test)]
mod tests {
    // These tests exercise the deprecated one-shot facade on purpose: it must keep
    // producing the same executions as the Session path it wraps.
    #![allow(deprecated)]

    use super::*;

    fn figure1_server() -> KSpotServer {
        KSpotServer::new(ScenarioConfig::figure1())
            .with_workload(WorkloadSpec::Figure1)
            .with_network_config(NetworkConfig::ideal())
    }

    fn conference_server(seed: u64) -> KSpotServer {
        KSpotServer::new(ScenarioConfig::conference())
            .with_workload(WorkloadSpec::RoomCorrelated(RoomModelParams::default()))
            .with_network_config(NetworkConfig::mica2())
            .with_seed(seed)
    }

    #[test]
    fn snapshot_query_on_figure1_returns_room_c_and_saves_traffic() {
        let server = figure1_server();
        let execution = server
            .submit("SELECT TOP 1 roomid, AVERAGE(sound) FROM sensors GROUP BY roomid EPOCH DURATION 1 min", 10)
            .expect("the paper's example query must run");
        assert_eq!(execution.algorithm, "KSpot (MINT views)");
        assert_eq!(execution.results.len(), 10);
        for result in &execution.results {
            assert_eq!(result.top().unwrap().key, 2, "room C wins every epoch");
        }
        let bullets = server.bullets(execution.latest().unwrap());
        assert_eq!(bullets.len(), 1);
        assert_eq!(bullets[0].cluster_name, "Room C");
        assert_eq!(bullets[0].rank, 1);
        let savings = execution.panel.savings_vs("TAG + sink Top-K").unwrap();
        assert!(savings.byte_savings_pct() > 0.0, "MINT must save bytes over TAG: {savings}");
    }

    #[test]
    fn conference_topk_runs_and_panel_reports_energy_savings() {
        let server = conference_server(3);
        let execution = server
            .submit("SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid EPOCH DURATION 30 s", 50)
            .expect("Figure-3 style query runs");
        assert_eq!(execution.results.len(), 50);
        assert_eq!(execution.results[0].items.len(), 3);
        let savings = execution.panel.savings_vs("centralized collection").unwrap();
        // With K = 3 of only 6 clusters the pruning threshold is permissive: MINT still
        // ships fewer upstream bytes than raw collection, but its extra control floods
        // and probe round trips are many *small* frames, each paying the radio's
        // per-frame preamble — so at this 14-node demo scale the energy comparison is a
        // wash (the E4/E5 sweeps show the real effect at scale).
        assert!(savings.byte_savings_pct() > 0.0, "MINT must ship fewer bytes: {savings}");
        // The bottleneck node's load (and therefore the lifetime) stays in the same
        // ballpark as the baselines rather than strictly ahead of them.
        assert!(execution.panel.lifetime_extension_factor(20.0e9).unwrap() > 0.5);
        // Bullets carry the conference cluster names.
        let bullets = server.bullets(execution.latest().unwrap());
        assert!(bullets.iter().all(|b| !b.cluster_name.is_empty()));
    }

    #[test]
    fn historic_vertical_query_routes_to_tja() {
        let server = conference_server(5);
        let execution = server
            .submit(
                "SELECT TOP 5 epoch, AVG(sound) FROM sensors GROUP BY epoch EPOCH DURATION 30 s WITH HISTORY 64 epochs",
                0,
            )
            .expect("historic query runs");
        assert!(execution.algorithm.contains("TJA"));
        assert_eq!(execution.results.len(), 1);
        assert_eq!(execution.results[0].items.len(), 5);
        let vs_central = execution.panel.savings_vs("centralized window collection").unwrap();
        assert!(vs_central.byte_savings_pct() > 0.0, "TJA must beat shipping whole windows");
    }

    #[test]
    fn historic_horizontal_query_uses_local_filtering() {
        let server = conference_server(7);
        let execution = server
            .submit(
                "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid EPOCH DURATION 30 s WITH HISTORY 32 epochs",
                0,
            )
            .expect("historic horizontal query runs");
        assert_eq!(execution.algorithm, "local filter + MINT update");
        assert_eq!(execution.results[0].items.len(), 2);
        let savings = execution.panel.primary_savings().unwrap();
        assert!(savings.byte_savings_pct() > 50.0, "local filtering avoids shipping windows: {savings}");
    }

    #[test]
    fn node_monitoring_query_routes_to_fila() {
        // FILA only saves traffic when the K-th and (K+1)-th ranked nodes are separated;
        // seeds whose room draws leave them statistically tied (same room) churn the
        // boundary filter every epoch.  Seed 4 produces the separated regime.
        let server = conference_server(4);
        let execution = server
            .submit("SELECT TOP 3 nodeid, sound FROM sensors EPOCH DURATION 10 s", 30)
            .expect("monitoring query runs");
        assert!(execution.algorithm.contains("FILA"));
        assert_eq!(execution.results.len(), 30);
        let savings = execution.panel.savings_vs("per-epoch collection").unwrap();
        assert!(savings.message_savings_pct() > 0.0);
    }

    #[test]
    fn plain_aggregate_and_raw_queries_run_too() {
        let server = conference_server(11);
        let agg = server
            .submit("SELECT roomid, AVG(sound) FROM sensors GROUP BY roomid EPOCH DURATION 30 s", 5)
            .expect("plain aggregate runs");
        assert!(agg.algorithm.contains("TAG"));
        assert_eq!(agg.results.len(), 5);
        assert_eq!(agg.results[0].items.len(), 6, "all six clusters are reported");

        let raw = server.submit("SELECT * FROM sensors", 3).expect("raw query runs");
        assert!(raw.algorithm.contains("centralized"));
        assert!(raw.panel.baselines.is_empty());
    }

    #[test]
    fn invalid_queries_are_rejected_with_parser_errors() {
        let server = figure1_server();
        assert!(server.submit("SELECT TOP 0 roomid, AVG(sound) FROM sensors GROUP BY roomid", 5).is_err());
        assert!(server.submit("SELEKT oops", 5).is_err());
    }

    #[test]
    fn continuous_queries_reject_zero_epochs_but_historic_queries_ignore_the_count() {
        let server = conference_server(2);
        for sql in [
            "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid",
            "SELECT roomid, AVG(sound) FROM sensors GROUP BY roomid",
            "SELECT * FROM sensors",
            "SELECT TOP 2 nodeid, sound FROM sensors",
        ] {
            let err = server.submit(sql, 0).unwrap_err();
            assert!(err.to_string().contains("epochs > 0"), "{sql}: {err}");
        }
        // One-shot historic queries answer from the WITH HISTORY window whatever the
        // epoch count says.
        let sql = "SELECT TOP 3 epoch, AVG(sound) FROM sensors GROUP BY epoch WITH HISTORY 16 epochs";
        let at_zero = server.submit(sql, 0).expect("historic ignores epochs");
        let at_nine = server.submit(sql, 9).expect("historic ignores epochs");
        assert_eq!(at_zero.results, at_nine.results);
        assert_eq!(at_zero.results.len(), 1);
    }

    #[test]
    fn a_lifetime_clause_clamps_the_whole_execution_including_baselines() {
        let server = conference_server(8);
        let execution = server
            .submit(
                "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid LIFETIME 3 epochs",
                25,
            )
            .unwrap();
        assert_eq!(execution.results.len(), 3, "LIFETIME bounds the query");
        assert_eq!(execution.panel.kspot.epochs, 3);
        for baseline in &execution.panel.baselines {
            assert_eq!(baseline.epochs, 3, "baselines must cover the same span: {}", baseline.name);
        }
        // Like-for-like spans keep the savings comparison meaningful.
        let short = server
            .submit("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid", 3)
            .unwrap();
        assert_eq!(execution.panel.kspot.totals, short.panel.kspot.totals);
    }

    #[test]
    fn lazy_baselines_skip_the_comparison_runs_but_keep_the_answers() {
        let eager = conference_server(3);
        let lazy = conference_server(3).with_lazy_baselines(true);
        let sql = "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid";
        let eager_exec = eager.submit(sql, 25).unwrap();
        let lazy_exec = lazy.submit(sql, 25).unwrap();
        assert_eq!(eager_exec.results, lazy_exec.results, "answers are baseline-independent");
        assert_eq!(eager_exec.panel.baselines.len(), 2);
        assert!(lazy_exec.panel.baselines.is_empty());
        assert_eq!(eager_exec.panel.kspot, lazy_exec.panel.kspot);

        let historic = "SELECT TOP 3 epoch, AVG(sound) FROM sensors GROUP BY epoch WITH HISTORY 16 epochs";
        assert!(lazy.submit(historic, 0).unwrap().panel.baselines.is_empty());
        assert_eq!(eager.submit(historic, 0).unwrap().panel.baselines.len(), 2);
    }

    #[test]
    fn parallel_batches_are_byte_identical_to_serial_ones() {
        let server = conference_server(6).with_lazy_baselines(true);
        let requests: Vec<BatchQuery> = vec![
            BatchQuery::new("SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid", 15),
            BatchQuery::new("SELECT TOP 3 roomid, MAX(sound) FROM sensors GROUP BY roomid", 10),
            BatchQuery::new("SELECT roomid, AVG(sound) FROM sensors GROUP BY roomid", 8),
            BatchQuery::new("SELECT * FROM sensors", 4),
            BatchQuery::new("SELECT TOP 2 nodeid, sound FROM sensors", 12),
            BatchQuery::new("SELEKT broken", 5),
            BatchQuery::new(
                "SELECT TOP 4 epoch, AVG(sound) FROM sensors GROUP BY epoch WITH HISTORY 16 epochs",
                0,
            ),
        ];
        let serial = server.submit_batch(&requests, BatchMode::Serial);
        let parallel = server.submit_batch(&requests, BatchMode::Parallel);
        assert_eq!(serial.len(), parallel.len());
        for (i, (s, p)) in serial.iter().zip(parallel.iter()).enumerate() {
            match (s, p) {
                (Ok(se), Ok(pe)) => assert_eq!(se, pe, "request {i} diverged"),
                (Err(se), Err(pe)) => assert_eq!(se.to_string(), pe.to_string()),
                _ => panic!("request {i}: serial and parallel disagree on success"),
            }
        }
        // The batch preserves request order and per-request outcomes.
        assert!(serial[5].is_err(), "the broken query fails in both modes");
        assert_eq!(serial[0].as_ref().unwrap().results.len(), 15);
        assert_eq!(serial[4].as_ref().unwrap().results.len(), 12);
    }

    #[test]
    fn executions_are_deterministic_in_the_seed() {
        let run = |seed| {
            conference_server(seed)
                .submit("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid", 20)
                .unwrap()
                .results
                .iter()
                .map(|r| r.keys())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(4), run(4));
    }
}
