//! The KSpot server — the base station through which user requests are disseminated.
//!
//! The server owns the scenario configuration, parses the SQL-like text typed into the
//! Query Panel, classifies it ([`kspot_query::plan::classify`]), routes it to the
//! matching in-network algorithm (MINT for snapshot Top-K, TJA for historic vertically
//! fragmented Top-K, TAG for plain aggregates, …), executes it over the simulated
//! network, and produces everything the GUI panels would show: the per-epoch ranked
//! answers, the *KSpot bullets* of the Display Panel, and the System Panel with the
//! savings against the conventional acquisition baselines.

use crate::config::ScenarioConfig;
use crate::panel::{StrategyReport, SystemPanel};
use kspot_algos::historic::HistoricAlgorithm;
use kspot_algos::{
    CentralizedCollection, CentralizedHistoric, FilaMonitor, HistoricDataset, HistoricSpec,
    LocalAggregateHistoric, MintViews, SnapshotAlgorithm, SnapshotSpec, TagTopK, Tja, TopKResult,
    Tput,
};
use kspot_net::{
    Epoch, GroupId, Network, NetworkConfig, PhaseTag, RoomModelParams, Workload,
};
use kspot_query::plan::{classify, ExecutionStrategy, QueryPlan};
use kspot_query::{parse, QueryError};
use std::fmt;

/// Which synthetic workload drives the sensors during an execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadSpec {
    /// The constant readings of Figure 1 (only valid on the Figure-1 scenario).
    Figure1,
    /// Room-correlated activity with the given drift/noise parameters.
    RoomCorrelated(RoomModelParams),
    /// Independent random walk per node with the given step deviation.
    RandomWalk(f64),
    /// Fresh uniform values every epoch (no temporal correlation).
    UniformIid,
}

impl WorkloadSpec {
    fn build(&self, config: &ScenarioConfig, seed: u64) -> Workload {
        match self {
            WorkloadSpec::Figure1 => Workload::figure1(&config.deployment),
            WorkloadSpec::RoomCorrelated(params) => {
                Workload::room_correlated(&config.deployment, config.domain, *params, seed)
            }
            WorkloadSpec::RandomWalk(sigma) => {
                Workload::random_walk(&config.deployment, config.domain, *sigma, seed)
            }
            WorkloadSpec::UniformIid => Workload::uniform_iid(&config.deployment, config.domain, seed),
        }
    }
}

/// One red bullet of the Display Panel: a ranked cluster with its current value.
#[derive(Debug, Clone, PartialEq)]
pub struct KSpotBullet {
    /// 1-based rank (1 = highest).
    pub rank: usize,
    /// The ranked cluster.
    pub cluster: GroupId,
    /// The cluster's display name.
    pub cluster_name: String,
    /// The aggregate value that earned the rank.
    pub value: f64,
}

impl fmt::Display for KSpotBullet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} {} ({:.1})", self.rank, self.cluster_name, self.value)
    }
}

/// The outcome of executing one query: the routing decision, the ranked answers, and the
/// System Panel comparing KSpot against the conventional baselines.
#[derive(Debug, Clone)]
pub struct QueryExecution {
    /// The classified plan.
    pub plan: QueryPlan,
    /// The algorithm KSpot routed the query to.
    pub algorithm: String,
    /// Per-epoch ranked answers (a single entry for one-shot historic queries).
    pub results: Vec<TopKResult>,
    /// The System Panel.
    pub panel: SystemPanel,
}

impl QueryExecution {
    /// The most recent ranked answer.
    pub fn latest(&self) -> Option<&TopKResult> {
        self.results.last()
    }
}

/// The KSpot base station.
#[derive(Debug, Clone)]
pub struct KSpotServer {
    scenario: ScenarioConfig,
    workload: WorkloadSpec,
    net_config: NetworkConfig,
    seed: u64,
}

impl KSpotServer {
    /// Boots a server for a scenario with the default (room-correlated) workload and the
    /// MICA2 cost model.
    pub fn new(scenario: ScenarioConfig) -> Self {
        Self {
            scenario,
            workload: WorkloadSpec::RoomCorrelated(RoomModelParams::default()),
            net_config: NetworkConfig::mica2(),
            seed: 0,
        }
    }

    /// Selects the workload driving the sensors.
    pub fn with_workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = workload;
        self
    }

    /// Selects the network cost model.
    pub fn with_network_config(mut self, config: NetworkConfig) -> Self {
        self.net_config = config;
        self
    }

    /// Sets the random seed for reproducible executions.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The configured scenario.
    pub fn scenario(&self) -> &ScenarioConfig {
        &self.scenario
    }

    fn fresh_network(&self) -> Network {
        // The server's seed is a master seed; each component gets its own derived
        // stream (see the seeding convention in `kspot_net::rng`).
        let config = self.net_config.clone().with_seed(kspot_net::rng::substrate_seed(self.seed));
        Network::new(self.scenario.deployment.clone(), config)
    }

    fn fresh_workload(&self) -> Workload {
        self.workload.build(&self.scenario, kspot_net::rng::workload_seed(self.seed))
    }

    /// Turns a ranked answer into the Display Panel's bullets.
    pub fn bullets(&self, result: &TopKResult) -> Vec<KSpotBullet> {
        result
            .items
            .iter()
            .enumerate()
            .map(|(i, item)| KSpotBullet {
                rank: i + 1,
                cluster: item.key as GroupId,
                cluster_name: self.scenario.cluster_name(item.key as GroupId),
                value: item.value,
            })
            .collect()
    }

    /// Parses, classifies, routes and executes a query for `epochs` epochs (one-shot
    /// historic queries interpret `epochs` as a cap on nothing — their window length
    /// comes from the WITH HISTORY clause).
    pub fn submit(&self, sql: &str, epochs: usize) -> Result<QueryExecution, QueryError> {
        let query = parse(sql)?;
        let plan = classify(&query)?;
        Ok(match plan.strategy {
            ExecutionStrategy::SnapshotTopK => self.run_snapshot_topk(plan, epochs)?,
            ExecutionStrategy::InNetworkAggregate => self.run_plain_aggregate(plan, epochs)?,
            ExecutionStrategy::RawCollection => self.run_raw_collection(plan, epochs),
            ExecutionStrategy::NodeMonitoringTopK => self.run_node_monitoring(plan, epochs),
            ExecutionStrategy::HistoricVerticalTopK => self.run_historic_vertical(plan)?,
            ExecutionStrategy::HistoricHorizontalTopK => self.run_historic_horizontal(plan)?,
        })
    }

    fn run_snapshot<A: SnapshotAlgorithm>(
        &self,
        algo: &mut A,
        epochs: usize,
    ) -> (Vec<TopKResult>, StrategyReport) {
        let mut net = self.fresh_network();
        let mut workload = self.fresh_workload();
        let results = kspot_algos::run_continuous(algo, &mut net, &mut workload, epochs);
        let report = StrategyReport::from_metrics(algo.name(), net.metrics(), epochs);
        (results, report)
    }

    fn run_snapshot_topk(&self, plan: QueryPlan, epochs: usize) -> Result<QueryExecution, QueryError> {
        let spec = SnapshotSpec::from_plan(&plan, self.scenario.domain)?;
        let mut mint = MintViews::new(spec);
        let (results, kspot_report) = self.run_snapshot(&mut mint, epochs);
        let (_, tag_report) = self.run_snapshot(&mut TagTopK::new(spec), epochs);
        let (_, central_report) = self.run_snapshot(&mut CentralizedCollection::new(spec), epochs);
        Ok(QueryExecution {
            algorithm: mint.name().to_string(),
            plan,
            results,
            panel: SystemPanel::new(kspot_report, vec![tag_report, central_report]),
        })
    }

    fn run_plain_aggregate(&self, plan: QueryPlan, epochs: usize) -> Result<QueryExecution, QueryError> {
        // Unranked grouped aggregation: TAG itself is the KSpot execution; the baseline
        // is shipping raw tuples.
        let func = plan
            .aggregate
            .ok_or_else(|| QueryError::semantic("an aggregate query needs an aggregate"))?;
        let k = self.scenario.num_clusters().max(1);
        let spec = SnapshotSpec::new(k, func, self.scenario.domain);
        let mut tag = TagTopK::new(spec);
        let (results, kspot_report) = self.run_snapshot(&mut tag, epochs);
        let (_, central_report) = self.run_snapshot(&mut CentralizedCollection::new(spec), epochs);
        Ok(QueryExecution {
            algorithm: tag.name().to_string(),
            plan,
            results,
            panel: SystemPanel::new(kspot_report, vec![central_report]),
        })
    }

    fn run_raw_collection(&self, plan: QueryPlan, epochs: usize) -> QueryExecution {
        let spec = SnapshotSpec::new(
            self.scenario.num_clusters().max(1),
            kspot_query::AggFunc::Avg,
            self.scenario.domain,
        );
        let mut central = CentralizedCollection::new(spec);
        let (results, report) = self.run_snapshot(&mut central, epochs);
        QueryExecution {
            algorithm: central.name().to_string(),
            plan,
            results,
            panel: SystemPanel::new(report, Vec::new()),
        }
    }

    fn run_node_monitoring(&self, plan: QueryPlan, epochs: usize) -> QueryExecution {
        let k = plan.k.max(1) as usize;
        let spec = SnapshotSpec::new(k, kspot_query::AggFunc::Max, self.scenario.domain);
        let mut fila = FilaMonitor::new(spec);
        let (results, kspot_report) = self.run_snapshot(&mut fila, epochs);

        // Baseline: every node reports its reading to the sink every epoch.
        let mut base_net = self.fresh_network();
        let mut workload = self.fresh_workload();
        for e in 0..epochs as Epoch {
            base_net.begin_epoch(e);
            for r in workload.next_epoch() {
                base_net.unicast_up(r.node, e, 1, PhaseTag::Update);
            }
        }
        let base_report = StrategyReport::from_metrics("per-epoch collection", base_net.metrics(), epochs);

        QueryExecution {
            algorithm: fila.name().to_string(),
            plan,
            results,
            panel: SystemPanel::new(kspot_report, vec![base_report]),
        }
    }

    fn collect_history(&self, window: usize) -> HistoricDataset {
        let mut workload = self.fresh_workload();
        HistoricDataset::collect(&mut workload, window)
    }

    fn run_historic_vertical(&self, plan: QueryPlan) -> Result<QueryExecution, QueryError> {
        let window = plan
            .history_epochs
            .ok_or_else(|| QueryError::semantic("a historic query needs a WITH HISTORY window"))? as usize;
        let func = plan
            .aggregate
            .ok_or_else(|| QueryError::semantic("a historic ranked query needs an aggregate"))?;
        let spec = HistoricSpec::new(plan.k.max(1) as usize, func, self.scenario.domain, window);
        let data = self.collect_history(window);

        let run = |algo: &mut dyn HistoricAlgorithm| {
            let mut net = self.fresh_network();
            let mut data = data.clone();
            let result = algo.execute(&mut net, &mut data);
            (result, StrategyReport::from_metrics(algo.name(), net.metrics(), window))
        };
        let mut tja = Tja::new(spec);
        let (result, kspot_report) = run(&mut tja);
        let (_, tput_report) = run(&mut Tput::new(spec));
        let (_, central_report) = run(&mut CentralizedHistoric::new(spec));

        Ok(QueryExecution {
            algorithm: tja.name().to_string(),
            plan,
            results: vec![result],
            panel: SystemPanel::new(kspot_report, vec![tput_report, central_report]),
        })
    }

    fn run_historic_horizontal(&self, plan: QueryPlan) -> Result<QueryExecution, QueryError> {
        let window = plan
            .history_epochs
            .ok_or_else(|| QueryError::semantic("a historic query needs a WITH HISTORY window"))? as usize;
        let spec = SnapshotSpec::from_plan(&plan, self.scenario.domain)?;
        let data = self.collect_history(window);

        let mut local = LocalAggregateHistoric::new(spec);
        let mut kspot_net = self.fresh_network();
        let mut kspot_data = data.clone();
        let result = local.execute(&mut kspot_net, &mut kspot_data);
        let kspot_report =
            StrategyReport::from_metrics("local filter + MINT update", kspot_net.metrics(), window);

        let hist_spec = HistoricSpec::new(
            spec.k,
            kspot_query::AggFunc::Avg,
            self.scenario.domain,
            window,
        );
        let mut central_net = self.fresh_network();
        let mut central_data = data;
        CentralizedHistoric::new(hist_spec).execute(&mut central_net, &mut central_data);
        let central_report = StrategyReport::from_metrics(
            "centralized window collection",
            central_net.metrics(),
            window,
        );

        Ok(QueryExecution {
            algorithm: "local filter + MINT update".to_string(),
            plan,
            results: vec![result],
            panel: SystemPanel::new(kspot_report, vec![central_report]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_server() -> KSpotServer {
        KSpotServer::new(ScenarioConfig::figure1())
            .with_workload(WorkloadSpec::Figure1)
            .with_network_config(NetworkConfig::ideal())
    }

    fn conference_server(seed: u64) -> KSpotServer {
        KSpotServer::new(ScenarioConfig::conference())
            .with_workload(WorkloadSpec::RoomCorrelated(RoomModelParams::default()))
            .with_network_config(NetworkConfig::mica2())
            .with_seed(seed)
    }

    #[test]
    fn snapshot_query_on_figure1_returns_room_c_and_saves_traffic() {
        let server = figure1_server();
        let execution = server
            .submit("SELECT TOP 1 roomid, AVERAGE(sound) FROM sensors GROUP BY roomid EPOCH DURATION 1 min", 10)
            .expect("the paper's example query must run");
        assert_eq!(execution.algorithm, "KSpot (MINT views)");
        assert_eq!(execution.results.len(), 10);
        for result in &execution.results {
            assert_eq!(result.top().unwrap().key, 2, "room C wins every epoch");
        }
        let bullets = server.bullets(execution.latest().unwrap());
        assert_eq!(bullets.len(), 1);
        assert_eq!(bullets[0].cluster_name, "Room C");
        assert_eq!(bullets[0].rank, 1);
        let savings = execution.panel.savings_vs("TAG + sink Top-K").unwrap();
        assert!(savings.byte_savings_pct() > 0.0, "MINT must save bytes over TAG: {savings}");
    }

    #[test]
    fn conference_topk_runs_and_panel_reports_energy_savings() {
        let server = conference_server(3);
        let execution = server
            .submit("SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid EPOCH DURATION 30 s", 50)
            .expect("Figure-3 style query runs");
        assert_eq!(execution.results.len(), 50);
        assert_eq!(execution.results[0].items.len(), 3);
        let savings = execution.panel.savings_vs("centralized collection").unwrap();
        assert!(savings.energy_savings_pct() > 0.0);
        // With K = 3 of only 6 clusters the pruning threshold is permissive, so the
        // bottleneck node's load (and therefore the lifetime) stays in the same ballpark
        // as TAG rather than strictly ahead of it.
        assert!(execution.panel.lifetime_extension_factor(20.0e9).unwrap() > 0.5);
        // Bullets carry the conference cluster names.
        let bullets = server.bullets(execution.latest().unwrap());
        assert!(bullets.iter().all(|b| !b.cluster_name.is_empty()));
    }

    #[test]
    fn historic_vertical_query_routes_to_tja() {
        let server = conference_server(5);
        let execution = server
            .submit(
                "SELECT TOP 5 epoch, AVG(sound) FROM sensors GROUP BY epoch EPOCH DURATION 30 s WITH HISTORY 64 epochs",
                0,
            )
            .expect("historic query runs");
        assert!(execution.algorithm.contains("TJA"));
        assert_eq!(execution.results.len(), 1);
        assert_eq!(execution.results[0].items.len(), 5);
        let vs_central = execution.panel.savings_vs("centralized window collection").unwrap();
        assert!(vs_central.byte_savings_pct() > 0.0, "TJA must beat shipping whole windows");
    }

    #[test]
    fn historic_horizontal_query_uses_local_filtering() {
        let server = conference_server(7);
        let execution = server
            .submit(
                "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid EPOCH DURATION 30 s WITH HISTORY 32 epochs",
                0,
            )
            .expect("historic horizontal query runs");
        assert_eq!(execution.algorithm, "local filter + MINT update");
        assert_eq!(execution.results[0].items.len(), 2);
        let savings = execution.panel.primary_savings().unwrap();
        assert!(savings.byte_savings_pct() > 50.0, "local filtering avoids shipping windows: {savings}");
    }

    #[test]
    fn node_monitoring_query_routes_to_fila() {
        // FILA only saves traffic when the K-th and (K+1)-th ranked nodes are separated;
        // seeds whose room draws leave them statistically tied (same room) churn the
        // boundary filter every epoch.  Seed 4 produces the separated regime.
        let server = conference_server(4);
        let execution = server
            .submit("SELECT TOP 3 nodeid, sound FROM sensors EPOCH DURATION 10 s", 30)
            .expect("monitoring query runs");
        assert!(execution.algorithm.contains("FILA"));
        assert_eq!(execution.results.len(), 30);
        let savings = execution.panel.savings_vs("per-epoch collection").unwrap();
        assert!(savings.message_savings_pct() > 0.0);
    }

    #[test]
    fn plain_aggregate_and_raw_queries_run_too() {
        let server = conference_server(11);
        let agg = server
            .submit("SELECT roomid, AVG(sound) FROM sensors GROUP BY roomid EPOCH DURATION 30 s", 5)
            .expect("plain aggregate runs");
        assert!(agg.algorithm.contains("TAG"));
        assert_eq!(agg.results.len(), 5);
        assert_eq!(agg.results[0].items.len(), 6, "all six clusters are reported");

        let raw = server.submit("SELECT * FROM sensors", 3).expect("raw query runs");
        assert!(raw.algorithm.contains("centralized"));
        assert!(raw.panel.baselines.is_empty());
    }

    #[test]
    fn invalid_queries_are_rejected_with_parser_errors() {
        let server = figure1_server();
        assert!(server.submit("SELECT TOP 0 roomid, AVG(sound) FROM sensors GROUP BY roomid", 5).is_err());
        assert!(server.submit("SELEKT oops", 5).is_err());
    }

    #[test]
    fn executions_are_deterministic_in_the_seed() {
        let run = |seed| {
            conference_server(seed)
                .submit("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid", 20)
                .unwrap()
                .results
                .iter()
                .map(|r| r.keys())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(4), run(4));
    }
}
