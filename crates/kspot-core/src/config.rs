//! Scenario configuration — the programmatic counterpart of KSpot's Configuration Panel.
//!
//! The Configuration Panel "enables the user to load a new scenario from a configuration
//! file or to create a new scenario that can be stored in a configuration file", where a
//! scenario says which sensors exist, where they sit on the floor plan and which
//! physical region (cluster) each belongs to.  [`ScenarioConfig`] captures exactly that,
//! offers the two named scenarios used in the paper, and supports a small line-based
//! configuration-file format so scenarios can be stored and re-loaded without pulling in
//! a serialisation framework.

use kspot_net::topology::{DeploymentKind, NodeSpec, Position};
use kspot_net::types::ValueDomain;
use kspot_net::{Deployment, GroupId, NodeId};
use std::collections::BTreeMap;
use std::fmt;

/// A named deployment scenario: the deployment plus human-readable cluster names and the
/// value domain of the monitored modality.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Scenario name shown in the GUI title bar.
    pub name: String,
    /// The sensed modality ("sound", "temperature", …).
    pub modality: String,
    /// The value domain of the modality.
    pub domain: ValueDomain,
    /// The physical deployment (positions, clusters, radio range).
    pub deployment: Deployment,
    /// Human-readable cluster names, keyed by group id.
    pub cluster_names: BTreeMap<GroupId, String>,
}

impl ScenarioConfig {
    /// The Figure-1 running example: a 4-room building monitored by 9 sensors.
    pub fn figure1() -> Self {
        let deployment = Deployment::figure1();
        let cluster_names = [(0, "Room A"), (1, "Room B"), (2, "Room C"), (3, "Room D")]
            .into_iter()
            .map(|(g, n)| (g as GroupId, n.to_string()))
            .collect();
        Self {
            name: "figure-1 building".to_string(),
            modality: "sound".to_string(),
            domain: ValueDomain::percentage(),
            deployment,
            cluster_names,
        }
    }

    /// The Figure-3 conference demo: 14 nodes in 6 clusters spread over the venue.
    pub fn conference() -> Self {
        let deployment = Deployment::conference();
        let cluster_names = [
            (0, "Auditorium"),
            (1, "Conference Room 1"),
            (2, "Conference Room 2"),
            (3, "Coffee Station East"),
            (4, "Coffee Station West"),
            (5, "Registration Desk"),
        ]
        .into_iter()
        .map(|(g, n)| (g as GroupId, n.to_string()))
        .collect();
        Self {
            name: "ICDE conference venue".to_string(),
            modality: "sound".to_string(),
            domain: ValueDomain::percentage(),
            deployment,
            cluster_names,
        }
    }

    /// A custom scenario around an arbitrary deployment; clusters get generated names.
    pub fn custom(name: impl Into<String>, modality: impl Into<String>, deployment: Deployment) -> Self {
        let cluster_names = deployment
            .group_members()
            .keys()
            .map(|&g| (g, format!("Cluster {g}")))
            .collect();
        Self {
            name: name.into(),
            modality: modality.into(),
            domain: ValueDomain::percentage(),
            deployment,
            cluster_names,
        }
    }

    /// The display name of a cluster.
    pub fn cluster_name(&self, group: GroupId) -> String {
        self.cluster_names
            .get(&group)
            .cloned()
            .unwrap_or_else(|| format!("Cluster {group}"))
    }

    /// Number of clusters in the scenario.
    pub fn num_clusters(&self) -> usize {
        self.deployment.num_groups()
    }

    /// Serialises the scenario into the line-based configuration-file format:
    ///
    /// ```text
    /// scenario <name>
    /// modality <name> <min> <max>
    /// range <radio range>
    /// sink <x> <y>
    /// cluster <group id> <name>
    /// node <id> <x> <y> <group id>
    /// ```
    pub fn to_config_string(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("scenario {}\n", self.name));
        out.push_str(&format!(
            "modality {} {} {}\n",
            self.modality, self.domain.min, self.domain.max
        ));
        out.push_str(&format!("range {}\n", self.deployment.radio_range()));
        let sink = self.deployment.sink_position();
        out.push_str(&format!("sink {} {}\n", sink.x, sink.y));
        for (g, name) in &self.cluster_names {
            out.push_str(&format!("cluster {g} {name}\n"));
        }
        for node in self.deployment.nodes() {
            out.push_str(&format!(
                "node {} {} {} {}\n",
                node.id, node.position.x, node.position.y, node.group
            ));
        }
        out
    }

    /// Parses a scenario from the configuration-file format produced by
    /// [`Self::to_config_string`].
    pub fn from_config_string(text: &str) -> Result<Self, ConfigError> {
        let mut name = String::new();
        let mut modality = String::from("sound");
        let mut domain = ValueDomain::percentage();
        let mut range = 0.0f64;
        let mut sink = Position::new(0.0, 0.0);
        let mut cluster_names = BTreeMap::new();
        let mut nodes: Vec<NodeSpec> = Vec::new();

        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let keyword = parts.next().unwrap_or_default();
            let rest: Vec<&str> = parts.collect();
            let err = |msg: &str| ConfigError { line: lineno + 1, message: msg.to_string() };
            let parse_f64 = |s: &str, what: &str| {
                s.parse::<f64>().map_err(|_| ConfigError {
                    line: lineno + 1,
                    message: format!("{what} `{s}` is not a number"),
                })
            };
            match keyword {
                "scenario" => name = rest.join(" "),
                "modality" => {
                    if rest.len() != 3 {
                        return Err(err("modality expects `<name> <min> <max>`"));
                    }
                    modality = rest[0].to_string();
                    domain = ValueDomain::new(parse_f64(rest[1], "domain min")?, parse_f64(rest[2], "domain max")?);
                }
                "range" => {
                    if rest.len() != 1 {
                        return Err(err("range expects a single number"));
                    }
                    range = parse_f64(rest[0], "radio range")?;
                }
                "sink" => {
                    if rest.len() != 2 {
                        return Err(err("sink expects `<x> <y>`"));
                    }
                    sink = Position::new(parse_f64(rest[0], "sink x")?, parse_f64(rest[1], "sink y")?);
                }
                "cluster" => {
                    if rest.len() < 2 {
                        return Err(err("cluster expects `<group id> <name>`"));
                    }
                    let g: GroupId = rest[0]
                        .parse()
                        .map_err(|_| err("cluster group id must be an integer"))?;
                    cluster_names.insert(g, rest[1..].join(" "));
                }
                "node" => {
                    if rest.len() != 4 {
                        return Err(err("node expects `<id> <x> <y> <group id>`"));
                    }
                    let id: NodeId = rest[0].parse().map_err(|_| err("node id must be an integer"))?;
                    let group: GroupId = rest[3].parse().map_err(|_| err("group id must be an integer"))?;
                    nodes.push(NodeSpec {
                        id,
                        position: Position::new(parse_f64(rest[1], "node x")?, parse_f64(rest[2], "node y")?),
                        group,
                    });
                }
                other => return Err(err(&format!("unknown keyword `{other}`"))),
            }
        }

        if nodes.is_empty() {
            return Err(ConfigError { line: 0, message: "the scenario defines no nodes".to_string() });
        }
        if range <= 0.0 {
            return Err(ConfigError { line: 0, message: "the scenario defines no positive radio range".to_string() });
        }
        nodes.sort_by_key(|n| n.id);
        let deployment = Deployment::from_parts(DeploymentKind::Custom, sink, nodes, range);
        let mut config = ScenarioConfig::custom(name, modality, deployment);
        config.domain = domain;
        for (g, n) in cluster_names {
            config.cluster_names.insert(g, n);
        }
        Ok(config)
    }
}

/// An error encountered while parsing a scenario configuration file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line number (0 when the problem is about the file as a whole).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "invalid scenario configuration: {}", self.message)
        } else {
            write!(f, "invalid scenario configuration at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_scenarios_match_the_paper() {
        let fig1 = ScenarioConfig::figure1();
        assert_eq!(fig1.deployment.num_nodes(), 9);
        assert_eq!(fig1.num_clusters(), 4);
        assert_eq!(fig1.cluster_name(2), "Room C");

        let conf = ScenarioConfig::conference();
        assert_eq!(conf.deployment.num_nodes(), 14);
        assert_eq!(conf.num_clusters(), 6);
        assert_eq!(conf.cluster_name(0), "Auditorium");
        assert_eq!(conf.cluster_name(99), "Cluster 99");
    }

    #[test]
    fn config_round_trips_through_the_file_format() {
        let original = ScenarioConfig::conference();
        let text = original.to_config_string();
        let parsed = ScenarioConfig::from_config_string(&text).expect("round trip parses");
        assert_eq!(parsed.name, original.name);
        assert_eq!(parsed.modality, original.modality);
        assert_eq!(parsed.deployment.num_nodes(), original.deployment.num_nodes());
        assert_eq!(parsed.num_clusters(), original.num_clusters());
        assert_eq!(parsed.cluster_name(3), original.cluster_name(3));
        for id in original.deployment.node_ids() {
            assert_eq!(parsed.deployment.group_of(id), original.deployment.group_of(id));
            let a = parsed.deployment.position_of(id);
            let b = original.deployment.position_of(id);
            assert!((a.x - b.x).abs() < 1e-12 && (a.y - b.y).abs() < 1e-12);
        }
    }

    #[test]
    fn config_format_tolerates_comments_and_blank_lines() {
        let text = "# my scenario\n\nscenario demo\nmodality sound 0 100\nrange 30\nsink 0 0\ncluster 0 Lab\nnode 1 5 5 0\nnode 2 6 6 0\n";
        let config = ScenarioConfig::from_config_string(text).expect("parses");
        assert_eq!(config.name, "demo");
        assert_eq!(config.deployment.num_nodes(), 2);
        assert_eq!(config.cluster_name(0), "Lab");
    }

    #[test]
    fn config_errors_carry_line_numbers() {
        let err = ScenarioConfig::from_config_string("scenario x\nbananas 1 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bananas"));

        let err = ScenarioConfig::from_config_string("node 1 a b 0\nrange 10\n").unwrap_err();
        assert!(err.message.contains("not a number"));

        let err = ScenarioConfig::from_config_string("scenario empty\nrange 10\n").unwrap_err();
        assert!(err.message.contains("no nodes"));

        let err = ScenarioConfig::from_config_string("node 1 1 1 0\n").unwrap_err();
        assert!(err.message.contains("radio range"));
    }

    #[test]
    fn custom_scenarios_get_generated_cluster_names() {
        let config = ScenarioConfig::custom("grid", "light", Deployment::grid(3, 10.0, Some(3)));
        assert_eq!(config.cluster_name(1), "Cluster 1");
        assert_eq!(config.num_clusters(), 3);
    }
}
