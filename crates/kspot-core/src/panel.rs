//! The System Panel — the statistics display the demo projects on the wall.
//!
//! The paper: "we will also present KSpot's system panel which continuously projects the
//! savings in energy and messages that our system yields".  [`SystemPanel`] is that
//! panel as a typed value: it compares the metrics of the KSpot execution against one or
//! more baseline executions of the *same* query over the *same* readings and reports the
//! message, byte and energy savings, the per-phase traffic breakdown and a network
//! lifetime estimate.

use kspot_net::{NetworkMetrics, PhaseTotals, Savings};
use std::fmt;

/// Metrics of one named execution strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyReport {
    /// Strategy name ("KSpot (MINT views)", "TAG + sink Top-K", …).
    pub name: String,
    /// Total traffic and energy of the run.
    pub totals: PhaseTotals,
    /// Per-phase breakdown, in phase order.
    pub phases: Vec<(String, PhaseTotals)>,
    /// Highest per-node energy consumption (the bottleneck node), µJ.
    pub bottleneck_energy_uj: f64,
    /// Number of epochs the run covered.
    pub epochs: usize,
}

impl StrategyReport {
    /// Builds a report from a finished run's metrics.
    pub fn from_metrics(name: impl Into<String>, metrics: &NetworkMetrics, epochs: usize) -> Self {
        Self {
            name: name.into(),
            totals: metrics.totals(),
            phases: metrics.phases().map(|(tag, totals)| (tag.to_string(), totals)).collect(),
            bottleneck_energy_uj: metrics.max_node_energy_uj(),
            epochs,
        }
    }

    /// Builds a report from one query scope's slice of a **shared** ledger — the
    /// per-query totals and phase table of a session served by the multi-query engine,
    /// with no dedicated solo run.  Per-node counters are not scoped, so the report
    /// carries no bottleneck-energy estimate (`bottleneck_energy_uj` is zero and
    /// [`Self::lifetime_epochs`] reports infinity); use a whole-run report when the
    /// lifetime read-out matters.
    pub fn from_scope(
        name: impl Into<String>,
        metrics: &NetworkMetrics,
        scope: kspot_net::QueryScope,
        epochs: usize,
    ) -> Self {
        Self {
            name: name.into(),
            totals: metrics.scope(scope),
            phases: metrics.scope_phases(scope).map(|(tag, totals)| (tag.to_string(), totals)).collect(),
            bottleneck_energy_uj: 0.0,
            epochs,
        }
    }

    /// Estimated network lifetime in epochs for a given per-node battery capacity: the
    /// bottleneck node's average energy per epoch determines when the first node dies.
    pub fn lifetime_epochs(&self, battery_capacity_uj: f64) -> f64 {
        if self.epochs == 0 || self.bottleneck_energy_uj <= 0.0 {
            return f64::INFINITY;
        }
        battery_capacity_uj / (self.bottleneck_energy_uj / self.epochs as f64)
    }
}

/// The System Panel: the KSpot run next to its baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemPanel {
    /// The KSpot execution (whatever algorithm the query was routed to).
    pub kspot: StrategyReport,
    /// Baseline executions of the same query (TAG, centralized collection, …).
    pub baselines: Vec<StrategyReport>,
    /// Per-query-session reports ([`StrategyReport::from_scope`]): each registered
    /// session's attributed totals and phase table, carved out of the shared ledger
    /// without any solo run.  Empty for panels that describe a single dedicated
    /// execution.
    pub sessions: Vec<StrategyReport>,
}

impl SystemPanel {
    /// Creates the panel.
    pub fn new(kspot: StrategyReport, baselines: Vec<StrategyReport>) -> Self {
        Self { kspot, baselines, sessions: Vec::new() }
    }

    /// Attaches per-session scope reports (the per-query phase table).
    pub fn with_sessions(mut self, sessions: Vec<StrategyReport>) -> Self {
        self.sessions = sessions;
        self
    }

    /// Savings of the KSpot run against the named baseline, if that baseline exists.
    pub fn savings_vs(&self, baseline_name: &str) -> Option<Savings> {
        self.baselines
            .iter()
            .find(|b| b.name == baseline_name)
            .map(|b| Savings::between(b.totals, self.kspot.totals))
    }

    /// Savings against the first (primary) baseline.
    pub fn primary_savings(&self) -> Option<Savings> {
        self.baselines.first().map(|b| Savings::between(b.totals, self.kspot.totals))
    }

    /// How many times longer the network lives under KSpot than under the primary
    /// baseline, for a given battery capacity.
    pub fn lifetime_extension_factor(&self, battery_capacity_uj: f64) -> Option<f64> {
        let baseline = self.baselines.first()?;
        let base_life = baseline.lifetime_epochs(battery_capacity_uj);
        let our_life = self.kspot.lifetime_epochs(battery_capacity_uj);
        if base_life.is_infinite() || base_life <= 0.0 {
            None
        } else {
            Some(our_life / base_life)
        }
    }
}

impl fmt::Display for SystemPanel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "┌─ KSpot System Panel ──────────────────────────────────────────")?;
        let all = std::iter::once(&self.kspot).chain(self.baselines.iter());
        writeln!(
            f,
            "│ {:<28} {:>10} {:>12} {:>14} {:>12}",
            "strategy", "messages", "bytes", "energy (mJ)", "tuples"
        )?;
        for report in all {
            writeln!(
                f,
                "│ {:<28} {:>10} {:>12} {:>14.2} {:>12}",
                report.name,
                report.totals.messages,
                report.totals.bytes,
                report.totals.energy_uj / 1000.0,
                report.totals.tuples
            )?;
        }
        if let Some(savings) = self.primary_savings() {
            writeln!(
                f,
                "│ savings vs {:<20} messages {:+.1}%  bytes {:+.1}%  energy {:+.1}%",
                self.baselines.first().map(|b| b.name.as_str()).unwrap_or("baseline"),
                savings.message_savings_pct(),
                savings.byte_savings_pct(),
                savings.energy_savings_pct()
            )?;
        }
        for (phase, totals) in &self.kspot.phases {
            writeln!(
                f,
                "│   kspot phase {:<18} {:>6} msgs {:>10} B",
                phase, totals.messages, totals.bytes
            )?;
        }
        for session in &self.sessions {
            writeln!(
                f,
                "│ {:<28} {:>10} {:>12} {:>14.2} {:>12}",
                session.name,
                session.totals.messages,
                session.totals.bytes,
                session.totals.energy_uj / 1000.0,
                session.totals.tuples
            )?;
            for (phase, totals) in &session.phases {
                writeln!(
                    f,
                    "│   {:<26} {:>6} msgs {:>10} B",
                    format!("└ {phase}"),
                    totals.messages,
                    totals.bytes
                )?;
            }
        }
        write!(f, "└───────────────────────────────────────────────────────────────")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspot_net::{NetworkMetrics, PhaseTag};

    fn metrics_with(messages: u64, bytes_per_msg: u32, energy_each: f64) -> NetworkMetrics {
        let mut m = NetworkMetrics::new(4);
        for i in 0..messages {
            m.record_transmission(
                1,
                0,
                i,
                PhaseTag::Update,
                bytes_per_msg,
                1,
                energy_each,
                energy_each / 2.0,
            );
        }
        m
    }

    #[test]
    fn reports_capture_totals_and_phases() {
        let metrics = metrics_with(10, 20, 100.0);
        let report = StrategyReport::from_metrics("KSpot (MINT views)", &metrics, 10);
        assert_eq!(report.totals.messages, 10);
        assert_eq!(report.totals.bytes, 200);
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.phases[0].0, "update");
        assert!(report.bottleneck_energy_uj > 0.0);
    }

    #[test]
    fn lifetime_scales_inversely_with_energy() {
        let frugal = StrategyReport::from_metrics("frugal", &metrics_with(10, 10, 10.0), 10);
        let hungry = StrategyReport::from_metrics("hungry", &metrics_with(10, 10, 100.0), 10);
        let battery = 1.0e6;
        assert!(frugal.lifetime_epochs(battery) > hungry.lifetime_epochs(battery) * 5.0);
        let idle = StrategyReport::from_metrics("idle", &NetworkMetrics::new(4), 10);
        assert!(idle.lifetime_epochs(battery).is_infinite());
    }

    #[test]
    fn panel_computes_savings_and_extension() {
        let kspot = StrategyReport::from_metrics("KSpot (MINT views)", &metrics_with(10, 10, 10.0), 10);
        let tag = StrategyReport::from_metrics("TAG + sink Top-K", &metrics_with(40, 20, 10.0), 10);
        let central = StrategyReport::from_metrics("centralized collection", &metrics_with(40, 50, 10.0), 10);
        let panel = SystemPanel::new(kspot, vec![tag, central]);

        let vs_tag = panel.savings_vs("TAG + sink Top-K").unwrap();
        assert!((vs_tag.message_savings_pct() - 75.0).abs() < 1e-9);
        assert!(panel.savings_vs("nonexistent").is_none());
        let primary = panel.primary_savings().unwrap();
        assert!(primary.byte_savings_pct() > 0.0);
        let factor = panel.lifetime_extension_factor(1.0e6).unwrap();
        assert!(factor > 1.0, "KSpot should extend the lifetime, factor {factor}");
    }

    #[test]
    fn panel_display_mentions_all_strategies() {
        let kspot = StrategyReport::from_metrics("KSpot (MINT views)", &metrics_with(5, 10, 10.0), 5);
        let tag = StrategyReport::from_metrics("TAG + sink Top-K", &metrics_with(9, 20, 10.0), 5);
        let panel = SystemPanel::new(kspot, vec![tag]);
        let text = panel.to_string();
        assert!(text.contains("KSpot System Panel"));
        assert!(text.contains("MINT views"));
        assert!(text.contains("TAG + sink Top-K"));
        assert!(text.contains("savings vs"));
    }
}
