//! # kspot-core — the KSpot system
//!
//! This crate assembles the substrate ([`kspot_net`]), the query language
//! ([`kspot_query`]) and the ranking algorithms ([`kspot_algos`]) into the two-tier
//! system the ICDE 2009 demonstration describes:
//!
//! * [`config::ScenarioConfig`] — the Configuration Panel: which sensors exist, where
//!   they sit on the floor plan and which cluster (room) each belongs to, including the
//!   Figure-1 and Figure-3 scenarios and a load/store file format;
//! * [`client::NodeRuntime`] — the KSpot client that runs on every node: local query
//!   router (SELECT/GROUP-BY → local engine, TOP-K → top-k operator) plus the local
//!   sliding-window buffer;
//! * [`engine::QueryEngine`] — the long-lived multi-query engine: N registered query
//!   sessions (with admission and cancellation) share one live substrate and one epoch
//!   loop, with per-session metrics attribution — see ADR-003;
//! * [`fleet::EngineFleet`] — M independent engine deployments driven concurrently by
//!   a fixed thread pool, with session routing by deployment id and a fleet-level
//!   admission cap; every shard stays byte-identical to a solo engine — see ADR-006;
//! * durable windows — an engine built [`engine::QueryEngine::with_checkpointing`]
//!   snapshots its shared window bank into a [`kspot_store::CheckpointStore`] ring on
//!   the modeled flash every `cadence` epochs, serving `AS OF epoch e` time-travel
//!   sessions and surviving restarts via [`engine::QueryEngine::with_checkpoint_store`]
//!   — see ADR-009;
//! * [`server::KSpotServer`] — the base station: parses Query Panel SQL, routes it to
//!   MINT / TJA / TAG / FILA based on the query semantics, executes it over the engine
//!   and produces the ranked answers and the Display Panel bullets, serially or as a
//!   parallel batch ([`server::KSpotServer::submit_batch`]);
//! * [`panel::SystemPanel`] — the System Panel: message/byte/energy savings of the KSpot
//!   execution against the conventional acquisition baselines, plus lifetime estimates.
//!
//! ```
//! use kspot_core::{KSpotServer, ScenarioConfig, WorkloadSpec};
//!
//! let server = KSpotServer::new(ScenarioConfig::figure1()).with_workload(WorkloadSpec::Figure1);
//! let mut engine = server.engine();
//! let session = engine
//!     .register("SELECT TOP 1 roomid, AVERAGE(sound) FROM sensors GROUP BY roomid EPOCH DURATION 1 min")
//!     .unwrap();
//! engine.run_epochs(5);
//! // The correct answer to the paper's running example is room C with an average of 75.
//! assert_eq!(server.bullets(&session.latest().unwrap())[0].cluster_name, "Room C");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod config;
pub mod engine;
pub mod fleet;
pub mod panel;
pub mod server;

pub use client::{route_plan, LocalOperator, NodeRuntime};
pub use config::{ConfigError, ScenarioConfig};
pub use engine::{EngineRef, QueryEngine, QueryId, Session, SessionStatus};
pub use fleet::{AdmissionScope, DeploymentId, EngineFleet, FleetError, ShardHealth};
pub use panel::{StrategyReport, SystemPanel};
pub use server::{BatchMode, BatchQuery, KSpotBullet, KSpotServer, QueryExecution, WorkloadSpec};

// The durable-store handles an embedder needs to persist and resume an engine
// (ADR-009), re-exported so `with_checkpoint_store(CheckpointStore::from_bytes(..)?)`
// works without a direct kspot-store dependency.
pub use kspot_store::{CheckpointStore, StoreError, DEFAULT_RETENTION};
