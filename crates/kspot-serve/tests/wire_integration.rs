//! Loopback integration tests for the wire front-end: real sockets, real worker
//! pool, hostile inputs, slow readers, quota exhaustion, poisoned shards and clean
//! shutdown — the trust-boundary behaviours ADR-007 promises.

use kspot_core::{EngineFleet, ScenarioConfig, ShardHealth, WorkloadSpec};
use kspot_net::{NetworkConfig, RoomModelParams};
use kspot_serve::proto::{STATUS_ACTIVE, STATUS_CANCELLED, STATUS_COMPLETED};
use kspot_serve::{ClientError, Request, Response, ServeConfig, WireClient, WireServer};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

const SQL: &str = "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid";
const TIMEOUT: Duration = Duration::from_secs(10);

fn fleet(deployments: usize) -> EngineFleet {
    EngineFleet::homogeneous(
        ScenarioConfig::conference(),
        WorkloadSpec::RoomCorrelated(RoomModelParams::default()),
        NetworkConfig::mica2(),
        7,
        deployments,
        2,
    )
}

fn server(deployments: usize, config: ServeConfig) -> WireServer {
    WireServer::start(fleet(deployments), config).expect("bind loopback")
}

#[test]
fn welcome_register_advance_poll_cancel_roundtrip() {
    let server = server(2, ServeConfig::default());
    let mut client = WireClient::connect(server.addr(), TIMEOUT).expect("connect");
    assert_eq!(
        client.welcome(),
        &Response::Welcome { protocol: kspot_serve::PROTOCOL_VERSION, deployments: 2 }
    );
    client.hello("acme").expect("hello");

    let session = match client.register(1, SQL).expect("register") {
        Response::Registered { session, deployment, algorithm } => {
            assert_eq!(deployment, 1);
            assert!(!algorithm.is_empty());
            session
        }
        other => panic!("expected Registered, got {other:?}"),
    };

    match client.advance(6).expect("advance") {
        Response::Advanced { epochs, poisoned } => {
            assert_eq!(epochs, 6);
            assert!(poisoned.is_empty());
        }
        other => panic!("expected Advanced, got {other:?}"),
    }

    let outcome = client.poll(session, 32).expect("poll");
    assert_eq!(outcome.status, STATUS_ACTIVE);
    assert_eq!(outcome.delivered as usize, outcome.answers.len());
    assert!(!outcome.answers.is_empty(), "6 epochs must produce answers");
    assert_eq!(outcome.pending, 0);
    for answer in &outcome.answers {
        let Response::Answer { session: s, items, .. } = answer else {
            panic!("expected Answer, got {answer:?}")
        };
        assert_eq!(*s, session);
        assert!(items.len() <= 2, "TOP 2 answers carry at most 2 items");
    }

    match client.cancel(session).expect("cancel") {
        Response::Cancelled { session: s, was_active } => {
            assert_eq!(s, session);
            assert!(was_active);
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // Polling a cancelled session still works and reports its status.
    let outcome = client.poll(session, 32).expect("poll after cancel");
    assert_eq!(outcome.status, STATUS_CANCELLED);

    client.bye().expect("bye");
    server.shutdown();
}

#[test]
fn bad_sql_and_bad_routing_are_400s_that_keep_the_connection_usable() {
    let server = server(1, ServeConfig::default());
    let mut client = WireClient::connect(server.addr(), TIMEOUT).expect("connect");

    match client.register(0, "SELECT gibberish FROM nowhere").expect("answered") {
        Response::Error { code: 400, reason } => assert!(!reason.is_empty()),
        other => panic!("expected a 400, got {other:?}"),
    }
    match client.register(9, SQL).expect("answered") {
        Response::Error { code: 400, reason } => {
            assert!(reason.contains("unknown deployment id 9"), "{reason}");
        }
        other => panic!("expected a 400, got {other:?}"),
    }
    // Unknown sessions too.
    match client.cancel(77).expect("answered") {
        Response::Error { code: 400, reason } => assert!(reason.contains("unknown session")),
        other => panic!("expected a 400, got {other:?}"),
    }
    // The connection survived all three.
    assert!(matches!(client.register(0, SQL).expect("register"), Response::Registered { .. }));
    client.bye().expect("bye");
    server.shutdown();
}

#[test]
fn oversized_frames_are_rejected_and_the_connection_closed() {
    let server = server(1, ServeConfig { max_frame_bytes: 1024, ..ServeConfig::default() });
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_read_timeout(Some(TIMEOUT)).expect("timeout");

    // A hostile length prefix claiming a 16 MiB body.
    stream.write_all(&(16u32 * 1024 * 1024).to_be_bytes()).expect("write");
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("server closes after the error frame");

    // Skip the Welcome frame, then expect an Error frame and EOF.
    let mut buf = bytes;
    let welcome = kspot_serve::proto::extract_frame(&mut buf, 4096).unwrap().expect("welcome");
    assert!(matches!(
        kspot_serve::proto::decode_response(&welcome),
        Ok(Response::Welcome { .. })
    ));
    let error = kspot_serve::proto::extract_frame(&mut buf, 4096).unwrap().expect("error frame");
    match kspot_serve::proto::decode_response(&error) {
        Ok(Response::Error { code: 400, reason }) => assert!(reason.contains("exceeds")),
        other => panic!("expected a 400, got {other:?}"),
    }
    assert!(buf.is_empty(), "nothing after the error frame");
    server.shutdown();
}

#[test]
fn truncated_and_garbage_frames_do_not_take_the_server_down() {
    let server = server(1, ServeConfig::default());

    // A frame whose body is garbage (bad tag).
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_read_timeout(Some(TIMEOUT)).expect("timeout");
    stream.write_all(&3u32.to_be_bytes()).expect("write");
    stream.write_all(&[0x7f, 0xde, 0xad]).expect("write");
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("server closes after the error frame");
    drop(stream);

    // A frame that never completes (header promising more than is sent), then an
    // abrupt disconnect mid-frame.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.write_all(&100u32.to_be_bytes()).expect("write");
    stream.write_all(b"half a frame").expect("write");
    drop(stream);

    // The server is still fully functional for well-behaved clients.
    let mut client = WireClient::connect(server.addr(), TIMEOUT).expect("connect");
    assert!(matches!(client.register(0, SQL).expect("register"), Response::Registered { .. }));
    client.bye().expect("bye");
    server.shutdown();
}

#[test]
fn tenant_quota_exhaustion_is_a_429_that_frees_on_cancel() {
    let server = server(1, ServeConfig { max_sessions_per_tenant: 2, ..ServeConfig::default() });
    let mut client = WireClient::connect(server.addr(), TIMEOUT).expect("connect");
    client.hello("small-tenant").expect("hello");

    let s1 = match client.register(0, SQL).expect("register") {
        Response::Registered { session, .. } => session,
        other => panic!("expected Registered, got {other:?}"),
    };
    let _s2 = match client.register(0, SQL).expect("register") {
        Response::Registered { session, .. } => session,
        other => panic!("expected Registered, got {other:?}"),
    };
    match client.register(0, SQL).expect("answered") {
        Response::Rejected { code: 429, reason } => {
            assert!(reason.contains("small-tenant"), "{reason}");
            assert!(reason.contains("quota"), "{reason}");
        }
        other => panic!("expected a 429, got {other:?}"),
    }
    // Another tenant is unaffected — the quota is per tenant, not global.
    let mut other = WireClient::connect(server.addr(), TIMEOUT).expect("connect");
    other.hello("big-tenant").expect("hello");
    assert!(matches!(other.register(0, SQL).expect("register"), Response::Registered { .. }));

    // Cancelling frees the slot.
    assert!(matches!(client.cancel(s1).expect("cancel"), Response::Cancelled { .. }));
    assert!(matches!(client.register(0, SQL).expect("register"), Response::Registered { .. }));

    client.bye().expect("bye");
    other.bye().expect("bye");
    server.shutdown();
}

#[test]
fn fleet_admission_overflow_is_a_429() {
    let fleet = fleet(2).with_max_total_sessions(3);
    let server = WireServer::start(
        fleet,
        ServeConfig { max_sessions_per_tenant: 100, ..ServeConfig::default() },
    )
    .expect("bind loopback");
    let mut client = WireClient::connect(server.addr(), TIMEOUT).expect("connect");
    for i in 0..3 {
        assert!(
            matches!(client.register(i % 2, SQL).expect("register"), Response::Registered { .. }),
            "session {i} should be admitted"
        );
    }
    match client.register(0, SQL).expect("answered") {
        Response::Rejected { code: 429, reason } => {
            assert!(reason.contains("fleet admission rejected"), "{reason}");
        }
        other => panic!("expected a 429, got {other:?}"),
    }
    client.bye().expect("bye");
    server.shutdown();
}

#[test]
fn slow_readers_are_throttled_not_buffered_without_bound() {
    // A tiny outbox forces the backpressure path: polls deliver at most what fits,
    // report the rest as pending, and repeated polls drain everything eventually.
    let server = server(
        1,
        ServeConfig { outbox_capacity_bytes: 256, ..ServeConfig::default() },
    );
    let mut client = WireClient::connect(server.addr(), TIMEOUT).expect("connect");
    let session = match client.register(0, SQL).expect("register") {
        Response::Registered { session, .. } => session,
        other => panic!("expected Registered, got {other:?}"),
    };
    // 40 epochs of TOP-2 answers (~30+ bytes each) cannot fit a 256-byte outbox.
    assert!(matches!(client.advance(40).expect("advance"), Response::Advanced { .. }));

    let mut delivered_total = 0usize;
    let mut throttled_polls = 0usize;
    for _ in 0..200 {
        let outcome = client.poll(session, u32::MAX).expect("poll");
        delivered_total += outcome.delivered as usize;
        if outcome.pending > 0 {
            throttled_polls += 1;
        } else if outcome.delivered == 0 {
            break;
        }
    }
    assert_eq!(delivered_total, 40, "every answer is eventually delivered exactly once");
    assert!(
        throttled_polls > 0,
        "a 256-byte outbox must throttle a 40-answer session across multiple polls"
    );
    client.bye().expect("bye");
    server.shutdown();
}

#[test]
fn a_poisoned_shard_degrades_to_503_while_neighbours_serve() {
    let server = server(3, ServeConfig::default());
    let mut client = WireClient::connect(server.addr(), TIMEOUT).expect("connect");
    let poisoned_session = match client.register(1, SQL).expect("register") {
        Response::Registered { session, .. } => session,
        other => panic!("expected Registered, got {other:?}"),
    };

    // Poison deployment 1 from inside the process (a torn epoch, per ADR-006).
    let handle = server.fleet().deployment(1).expect("deployment 1");
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _guard = handle.metrics();
        panic!("injected: tear deployment 1");
    }));
    assert!(result.is_err());
    assert_eq!(server.fleet().shard_health(1), Some(ShardHealth::Poisoned));

    // Registering on the torn shard is a 503 naming the deployment...
    match client.register(1, SQL).expect("answered") {
        Response::Unavailable { code: 503, deployment: 1, reason } => {
            assert!(reason.contains("poisoned"), "{reason}");
        }
        other => panic!("expected a 503 for deployment 1, got {other:?}"),
    }
    // ...polling its session is a 503 too...
    match client.poll(poisoned_session, 32) {
        Err(ClientError::Unexpected(Response::Unavailable { code: 503, deployment: 1, .. })) => {}
        other => panic!("expected a 503 for deployment 1, got {other:?}"),
    }
    // ...and its neighbours keep admitting, advancing and answering.
    let healthy = match client.register(0, SQL).expect("register") {
        Response::Registered { session, .. } => session,
        other => panic!("expected Registered, got {other:?}"),
    };
    match client.advance(5).expect("advance") {
        Response::Advanced { poisoned, .. } => assert_eq!(poisoned, vec![1]),
        other => panic!("expected Advanced, got {other:?}"),
    }
    let outcome = client.poll(healthy, 32).expect("poll");
    assert!(!outcome.answers.is_empty(), "healthy shard keeps producing answers");

    // Cancelling the poisoned session is answered (not a hang, not a crash) and the
    // connection survives the whole ordeal.
    assert!(matches!(
        client.cancel(poisoned_session).expect("cancel"),
        Response::Cancelled { .. }
    ));
    client.bye().expect("bye");
    server.shutdown();
}

#[test]
fn many_concurrent_clients_register_poll_and_cancel_without_protocol_errors() {
    let server = server(
        4,
        ServeConfig { workers: 4, max_sessions_per_tenant: 64, ..ServeConfig::default() },
    );
    let addr = server.addr();
    let handles: Vec<_> = (0..32)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = WireClient::connect(addr, TIMEOUT).expect("connect");
                client.hello(&format!("tenant-{}", i % 4)).expect("hello");
                let session = match client.register((i % 4) as u32, SQL).expect("register") {
                    Response::Registered { session, .. } => session,
                    other => panic!("client {i}: expected Registered, got {other:?}"),
                };
                assert!(matches!(client.advance(2).expect("advance"), Response::Advanced { .. }));
                for _ in 0..4 {
                    let outcome = client.poll(session, 16).expect("poll");
                    assert_eq!(outcome.delivered as usize, outcome.answers.len());
                }
                assert!(matches!(
                    client.cancel(session).expect("cancel"),
                    Response::Cancelled { .. }
                ));
                client.bye().expect("bye");
            })
        })
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        handle.join().unwrap_or_else(|_| panic!("client thread {i} panicked"));
    }
    server.shutdown();
}

#[test]
fn shutdown_with_in_flight_sessions_is_clean_and_returns_the_fleet() {
    let server = server(2, ServeConfig::default());
    let mut client = WireClient::connect(server.addr(), TIMEOUT).expect("connect");
    client.hello("acme").expect("hello");
    for d in 0..2 {
        assert!(matches!(client.register(d, SQL).expect("register"), Response::Registered { .. }));
    }
    assert_eq!(server.tenant_sessions("acme"), 2);

    // Shut down while the client still holds both sessions and never said Bye.
    let fleet = server.shutdown();
    // The server cancelled the in-flight sessions on the way out.
    assert_eq!(fleet.active_sessions(), 0, "in-flight sessions are cancelled on shutdown");
    // The client sees a closed connection, not a hang.
    match client.poll(1, 8) {
        Err(_) => {}
        Ok(outcome) => panic!("expected a closed connection, got {outcome:?}"),
    }
}

#[test]
fn a_connection_dropped_without_bye_releases_its_quota() {
    let server = server(1, ServeConfig { max_sessions_per_tenant: 1, ..ServeConfig::default() });
    {
        let mut client = WireClient::connect(server.addr(), TIMEOUT).expect("connect");
        client.hello("acme").expect("hello");
        assert!(matches!(client.register(0, SQL).expect("register"), Response::Registered { .. }));
        // Dropped here: no Cancel, no Bye.
    }
    // The server notices the disconnect and frees the quota slot; a new connection
    // of the same tenant can register again.  Allow a little time for the worker
    // pool to observe the EOF.
    let mut admitted = false;
    for _ in 0..100 {
        let mut client = WireClient::connect(server.addr(), TIMEOUT).expect("connect");
        client.hello("acme").expect("hello");
        match client.register(0, SQL).expect("answered") {
            Response::Registered { session, .. } => {
                admitted = true;
                let _ = client.cancel(session);
                let _ = client.bye();
                break;
            }
            Response::Rejected { .. } => std::thread::sleep(Duration::from_millis(10)),
            other => panic!("expected Registered or Rejected, got {other:?}"),
        }
    }
    assert!(admitted, "the dropped connection's quota slot was never released");
    server.shutdown();
}

const HISTORIC_SQL: &str =
    "SELECT TOP 2 epoch, AVG(sound) FROM sensors GROUP BY epoch WITH HISTORY 8 epochs";
const AS_OF_SQL: &str =
    "SELECT TOP 2 epoch, AVG(sound) FROM sensors GROUP BY epoch WITH HISTORY 8 epochs AS OF 7";

#[test]
fn as_of_time_travel_is_served_over_the_wire() {
    // A fleet that keeps no durable snapshots refuses AS OF with a wire-safe 400
    // (never a panic — the SQL is attacker-controlled).
    let server = WireServer::start(fleet(1), ServeConfig::default()).expect("bind loopback");
    let mut client = WireClient::connect(server.addr(), TIMEOUT).expect("connect");
    match client.register(0, AS_OF_SQL).expect("answered") {
        Response::Error { code: 400, reason } => {
            assert!(reason.contains("no durable snapshots"), "{reason}");
        }
        other => panic!("expected a 400, got {other:?}"),
    }
    client.bye().expect("bye");
    server.shutdown();

    // A checkpointing fleet serves time travel end to end.
    let server = WireServer::start(fleet(1).with_checkpointing(4), ServeConfig::default())
        .expect("bind loopback");
    let mut client = WireClient::connect(server.addr(), TIMEOUT).expect("connect");

    // Before any snapshot is retained the same SQL is still a 400...
    match client.register(0, AS_OF_SQL).expect("answered") {
        Response::Error { code: 400, reason } => {
            assert!(reason.contains("no retained checkpoint"), "{reason}");
        }
        other => panic!("expected a 400, got {other:?}"),
    }

    // ...so buffer the window first: a live historic session creates the shared
    // bank, and the cadence-4 store retains snapshots at epochs 3 and 7.
    let live = match client.register(0, HISTORIC_SQL).expect("register") {
        Response::Registered { session, .. } => session,
        other => panic!("expected Registered, got {other:?}"),
    };
    assert!(matches!(client.advance(8).expect("advance"), Response::Advanced { .. }));
    let live_outcome = client.poll(live, 8).expect("poll");
    assert_eq!(live_outcome.status, STATUS_COMPLETED);
    assert_eq!(live_outcome.answers.len(), 1, "the window filled, the session answered");

    // Now AS OF 7 admits, answers on the next tick, and the answer is stamped with
    // the snapshot epoch.  The snapshot taken at epoch 7 holds exactly the window
    // the live session answered from, so on this lossless substrate the travelled
    // answer reproduces the live one item for item.
    let travel = match client.register(0, AS_OF_SQL).expect("register") {
        Response::Registered { session, algorithm, .. } => {
            assert!(!algorithm.is_empty());
            session
        }
        other => panic!("expected Registered, got {other:?}"),
    };
    assert!(matches!(client.advance(1).expect("advance"), Response::Advanced { .. }));
    let outcome = client.poll(travel, 8).expect("poll");
    assert_eq!(outcome.status, STATUS_COMPLETED);
    assert_eq!(outcome.answers.len(), 1, "an AS OF session answers exactly once");
    let Response::Answer { epoch, ref items, .. } = outcome.answers[0] else {
        panic!("expected Answer, got {:?}", outcome.answers[0])
    };
    assert_eq!(epoch, 7, "the answer carries the snapshot epoch, not the tick epoch");
    let Response::Answer { items: ref live_items, .. } = live_outcome.answers[0] else {
        panic!("expected Answer, got {:?}", live_outcome.answers[0])
    };
    assert_eq!(items, live_items, "time travel reproduces the live answer");

    client.bye().expect("bye");
    server.shutdown();
}

#[test]
fn a_self_ticking_server_produces_byte_identical_answers_to_advance_driven_ticks() {
    const WANT: usize = 5;

    // The paced server ticks itself: no Advance request is ever sent, yet answers
    // accumulate on their own.
    let paced = WireServer::start(
        fleet(1),
        ServeConfig { pacer: Some(Duration::from_millis(20)), ..ServeConfig::default() },
    )
    .expect("bind loopback");
    let mut client = WireClient::connect(paced.addr(), TIMEOUT).expect("connect");
    let session = match client.register(0, SQL).expect("register") {
        Response::Registered { session, .. } => session,
        other => panic!("expected Registered, got {other:?}"),
    };
    let mut paced_answers = Vec::new();
    let deadline = std::time::Instant::now() + TIMEOUT;
    while paced_answers.len() < WANT && std::time::Instant::now() < deadline {
        let outcome = client.poll(session, 32).expect("poll");
        paced_answers.extend(outcome.answers);
        if paced_answers.len() < WANT {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    assert!(
        paced_answers.len() >= WANT,
        "the pacer thread must advance the fleet without any Advance request"
    );
    assert!(matches!(client.cancel(session).expect("cancel"), Response::Cancelled { .. }));
    client.bye().expect("bye");
    paced.shutdown();
    paced_answers.truncate(WANT);
    let Response::Answer { epoch: first_epoch, .. } = paced_answers[0] else {
        panic!("expected Answer, got {:?}", paced_answers[0])
    };

    // The Advance-driven twin: spin a fresh fleet to the epoch the paced session
    // registered at (the pacer had already ticked by then), register the same SQL —
    // same first session, same scope — and drive the same window by hand.
    let manual = WireServer::start(fleet(1), ServeConfig::default()).expect("bind loopback");
    let mut client = WireClient::connect(manual.addr(), TIMEOUT).expect("connect");
    let mut remaining = first_epoch;
    while remaining > 0 {
        let chunk = remaining.min(1024) as u32;
        assert!(matches!(client.advance(chunk).expect("advance"), Response::Advanced { .. }));
        remaining -= u64::from(chunk);
    }
    let manual_session = match client.register(0, SQL).expect("register") {
        Response::Registered { session, .. } => session,
        other => panic!("expected Registered, got {other:?}"),
    };
    assert_eq!(manual_session, session, "first registration on both servers");
    assert!(matches!(client.advance(WANT as u32).expect("advance"), Response::Advanced { .. }));
    let outcome = client.poll(manual_session, 32).expect("poll");
    assert_eq!(
        outcome.answers, paced_answers,
        "tick-driven and Advance-driven epochs must produce byte-identical answers"
    );
    client.bye().expect("bye");
    manual.shutdown();
}

#[test]
fn a_request_sent_in_tiny_pieces_is_still_one_frame() {
    let server = server(1, ServeConfig::default());
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_read_timeout(Some(TIMEOUT)).expect("timeout");
    stream.set_nodelay(true).expect("nodelay");

    let frame =
        kspot_serve::proto::encode_request(&Request::Register { deployment: 0, sql: SQL.into() })
            .expect("encodes");
    for byte in &frame {
        stream.write_all(std::slice::from_ref(byte)).expect("write");
        std::thread::sleep(Duration::from_micros(200));
    }
    // Welcome + Registered arrive framed as usual.
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let deadline = std::time::Instant::now() + TIMEOUT;
    let mut responses = Vec::new();
    while responses.len() < 2 && std::time::Instant::now() < deadline {
        let n = stream.read(&mut chunk).expect("read");
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        while let Some(body) =
            kspot_serve::proto::extract_frame(&mut buf, 64 * 1024).expect("well-framed")
        {
            responses.push(kspot_serve::proto::decode_response(&body).expect("decodes"));
        }
    }
    assert!(matches!(responses[0], Response::Welcome { .. }));
    assert!(matches!(responses[1], Response::Registered { .. }), "{responses:?}");
    server.shutdown();
}
