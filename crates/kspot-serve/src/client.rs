//! A small blocking client for the KSpot wire protocol — used by the loadgen, the
//! integration tests, and anyone scripting against a [`crate::WireServer`].

use crate::proto::{
    decode_response, encode_request, extract_frame, ProtoError, Request, Response,
    DEFAULT_MAX_FRAME_BYTES,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A client-side protocol failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, timeout).
    Io(std::io::Error),
    /// The server sent bytes that do not decode as a response frame.
    Proto(ProtoError),
    /// The server closed the connection mid-exchange.
    Closed,
    /// The server answered with a frame the operation did not expect.
    Unexpected(Response),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Unexpected(resp) => write!(f, "unexpected response {resp:?}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// Everything one [`WireClient::poll`] returned: the answers plus the terminating
/// `Flushed` bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct PollOutcome {
    /// The `Answer` frames, in delivery order.
    pub answers: Vec<Response>,
    /// Answers delivered by this poll.
    pub delivered: u32,
    /// Results the server still holds (poll again to drain).
    pub pending: u32,
    /// Session status byte (see [`crate::proto::STATUS_ACTIVE`]).
    pub status: u8,
}

/// A blocking connection to a [`crate::WireServer`].
pub struct WireClient {
    stream: TcpStream,
    inbuf: Vec<u8>,
    /// The `Welcome` frame received on connect.
    welcome: Response,
}

impl WireClient {
    /// Connects, applies a read timeout, and consumes the `Welcome` frame.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let mut client = Self { stream, inbuf: Vec::new(), welcome: Response::Bye };
        let welcome = client.read_response()?;
        match welcome {
            Response::Welcome { .. } => {
                client.welcome = welcome;
                Ok(client)
            }
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// The `Welcome` frame received on connect.
    pub fn welcome(&self) -> &Response {
        &self.welcome
    }

    /// Sends one request frame.
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        let frame = encode_request(req)?;
        self.stream.write_all(&frame)?;
        Ok(())
    }

    /// Reads the next response frame (blocking, honouring the read timeout).
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        loop {
            if let Some(body) = extract_frame(&mut self.inbuf, DEFAULT_MAX_FRAME_BYTES)? {
                return Ok(decode_response(&body)?);
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(ClientError::Closed);
            }
            self.inbuf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Sends a request and reads exactly one response.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send(req)?;
        self.read_response()
    }

    /// Declares this connection's tenant (fire-and-forget; `Hello` has no reply).
    pub fn hello(&mut self, tenant: &str) -> Result<(), ClientError> {
        self.send(&Request::Hello { tenant: tenant.to_string() })
    }

    /// Registers a query; any non-`Registered` reply is returned as-is for the
    /// caller to classify (rejected / unavailable / error).
    pub fn register(&mut self, deployment: u32, sql: &str) -> Result<Response, ClientError> {
        self.call(&Request::Register { deployment, sql: sql.to_string() })
    }

    /// Polls a session, collecting `Answer` frames until the terminating `Flushed`.
    /// A rejection or error frame surfaces as [`ClientError::Unexpected`].
    pub fn poll(&mut self, session: u64, max: u32) -> Result<PollOutcome, ClientError> {
        self.send(&Request::Poll { session, max })?;
        let mut answers = Vec::new();
        loop {
            match self.read_response()? {
                answer @ Response::Answer { .. } => answers.push(answer),
                Response::Flushed { delivered, pending, status, .. } => {
                    return Ok(PollOutcome { answers, delivered, pending, status });
                }
                other => return Err(ClientError::Unexpected(other)),
            }
        }
    }

    /// Cancels a session; any reply other than `Cancelled` is passed through.
    pub fn cancel(&mut self, session: u64) -> Result<Response, ClientError> {
        self.call(&Request::Cancel { session })
    }

    /// Advances every healthy deployment; returns the `Advanced` bookkeeping frame.
    pub fn advance(&mut self, epochs: u32) -> Result<Response, ClientError> {
        self.call(&Request::Advance { epochs })
    }

    /// Polite close: sends `Bye` and waits for the server's `Bye`.
    pub fn bye(mut self) -> Result<(), ClientError> {
        match self.call(&Request::Bye)? {
            Response::Bye => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }
}
