//! Load generator: hundreds of concurrent wire clients hammering a
//! [`crate::WireServer`], measuring per-op latency percentiles (experiment E16).
//!
//! Each connection runs the same script — connect, `Hello`, one timed `Register`,
//! a barrier (so peak session concurrency is reached before anyone cancels), a
//! series of timed `Poll`s, a timed `Cancel`, `Bye` — while a server-side pacer
//! advances the fleet.  With more connections than the fleet admission cap, the
//! overflow surfaces as 429-style `Rejected` frames, which the report counts
//! separately from protocol errors (there must be none of those).

use crate::client::{ClientError, WireClient};
use crate::proto::{Response, STATUS_CANCELLED};
use crate::server::{ServeConfig, WireServer};
use kspot_core::{EngineFleet, ScenarioConfig, WorkloadSpec};
use kspot_net::{NetworkConfig, RoomModelParams};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

/// Shape of one loadgen run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent client connections.
    pub connections: usize,
    /// Deployments in the fleet behind the server.
    pub deployments: usize,
    /// Fleet worker threads (epoch execution).
    pub threads: usize,
    /// Wire worker threads servicing connections.
    pub workers: usize,
    /// Timed polls each admitted connection performs.
    pub polls_per_connection: usize,
    /// `max` results requested per poll.
    pub poll_max: u32,
    /// Distinct tenants the connections are spread across.
    pub tenants: usize,
    /// Per-tenant session quota on the server.
    pub tenant_quota: usize,
    /// Fleet-wide admission cap.
    pub fleet_cap: usize,
    /// Server pacer interval driving epochs during the run.
    pub pacer: Duration,
    /// Master seed of the fleet.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            connections: 320,
            deployments: 4,
            threads: 4,
            workers: 8,
            polls_per_connection: 8,
            poll_max: 32,
            tenants: 40,
            tenant_quota: 16,
            fleet_cap: 256,
            pacer: Duration::from_millis(2),
            seed: 16,
        }
    }
}

/// Latency summary of one operation across every connection.
#[derive(Debug, Clone)]
pub struct OpStats {
    /// Operation name (`register` / `poll` / `cancel`).
    pub name: &'static str,
    /// Samples measured.
    pub count: usize,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Worst sample, milliseconds.
    pub max_ms: f64,
}

/// What one loadgen run produced.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Connections driven.
    pub connections: usize,
    /// Deployments in the fleet.
    pub deployments: usize,
    /// Per-op latency summaries (register, poll, cancel).
    pub ops: Vec<OpStats>,
    /// Sessions admitted (`Registered` frames).
    pub admitted: usize,
    /// 429-style `Rejected` frames (admission overflow — expected when
    /// `connections > fleet_cap`).
    pub rejected: usize,
    /// 503-style `Unavailable` frames (should be 0 unless a shard was poisoned).
    pub unavailable: usize,
    /// Framing/decoding/unexpected-frame failures.  The acceptance bar is **zero**.
    pub protocol_errors: usize,
    /// Answer frames received across all polls.
    pub answers: usize,
}

#[derive(Default)]
struct ClientTally {
    register_ms: Vec<f64>,
    poll_ms: Vec<f64>,
    cancel_ms: Vec<f64>,
    admitted: usize,
    rejected: usize,
    unavailable: usize,
    protocol_errors: usize,
    answers: usize,
}

const SQL: &str = "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid";

/// Runs the whole experiment: builds a fleet, starts a server on loopback, drives
/// `connections` concurrent clients through the register/poll/cancel script, shuts
/// the server down and aggregates the tallies.
pub fn run_loadgen(config: &LoadgenConfig) -> LoadgenReport {
    let fleet = EngineFleet::homogeneous(
        ScenarioConfig::conference(),
        WorkloadSpec::RoomCorrelated(RoomModelParams::default()),
        NetworkConfig::mica2(),
        config.seed,
        config.deployments,
        config.threads,
    )
    .with_max_total_sessions(config.fleet_cap);
    let server = WireServer::start(
        fleet,
        ServeConfig {
            workers: config.workers,
            max_sessions_per_tenant: config.tenant_quota,
            pacer: Some(config.pacer),
            ..ServeConfig::default()
        },
    )
    .expect("bind a loopback listener");
    let addr = server.addr();

    let registered_barrier = Arc::new(Barrier::new(config.connections));
    let tallies: Arc<Mutex<Vec<ClientTally>>> = Arc::new(Mutex::new(Vec::new()));
    let handles: Vec<_> = (0..config.connections)
        .map(|i| {
            let barrier = Arc::clone(&registered_barrier);
            let tallies = Arc::clone(&tallies);
            let config = config.clone();
            std::thread::Builder::new()
                .name(format!("loadgen-{i}"))
                .spawn(move || {
                    let tally = drive_one_client(addr, i, &config, &barrier);
                    tallies.lock().expect("tally mutex poisoned").push(tally);
                })
                .expect("spawn a loadgen client thread")
        })
        .collect();
    for handle in handles {
        let _ = handle.join();
    }
    let _fleet = server.shutdown();

    let mut merged = ClientTally::default();
    for tally in tallies.lock().expect("tally mutex poisoned").drain(..) {
        merged.register_ms.extend(tally.register_ms);
        merged.poll_ms.extend(tally.poll_ms);
        merged.cancel_ms.extend(tally.cancel_ms);
        merged.admitted += tally.admitted;
        merged.rejected += tally.rejected;
        merged.unavailable += tally.unavailable;
        merged.protocol_errors += tally.protocol_errors;
        merged.answers += tally.answers;
    }
    LoadgenReport {
        connections: config.connections,
        deployments: config.deployments,
        ops: vec![
            op_stats("register", merged.register_ms),
            op_stats("poll", merged.poll_ms),
            op_stats("cancel", merged.cancel_ms),
        ],
        admitted: merged.admitted,
        rejected: merged.rejected,
        unavailable: merged.unavailable,
        protocol_errors: merged.protocol_errors,
        answers: merged.answers,
    }
}

fn drive_one_client(
    addr: std::net::SocketAddr,
    index: usize,
    config: &LoadgenConfig,
    barrier: &Barrier,
) -> ClientTally {
    let mut tally = ClientTally::default();
    let mut client = match WireClient::connect(addr, Duration::from_secs(30)) {
        Ok(client) => client,
        Err(_) => {
            tally.protocol_errors += 1;
            barrier.wait();
            return tally;
        }
    };
    let tenant = format!("tenant-{}", index % config.tenants.max(1));
    if client.hello(&tenant).is_err() {
        tally.protocol_errors += 1;
        barrier.wait();
        return tally;
    }

    let deployment = (index % config.deployments.max(1)) as u32;
    let start = Instant::now();
    let registration = client.register(deployment, SQL);
    tally.register_ms.push(ms_since(start));
    let session = match registration {
        Ok(Response::Registered { session, .. }) => {
            tally.admitted += 1;
            Some(session)
        }
        Ok(Response::Rejected { .. }) => {
            tally.rejected += 1;
            None
        }
        Ok(Response::Unavailable { .. }) => {
            tally.unavailable += 1;
            None
        }
        Ok(_) | Err(_) => {
            tally.protocol_errors += 1;
            None
        }
    };
    // Hold admissions until every connection has tried to register, so the run
    // demonstrates true peak concurrency against the admission cap.
    barrier.wait();

    if let Some(session) = session {
        for _ in 0..config.polls_per_connection {
            let start = Instant::now();
            match client.poll(session, config.poll_max) {
                Ok(outcome) => {
                    tally.poll_ms.push(ms_since(start));
                    tally.answers += outcome.answers.len();
                    if outcome.status == STATUS_CANCELLED {
                        break;
                    }
                }
                Err(ClientError::Unexpected(Response::Unavailable { .. })) => {
                    tally.poll_ms.push(ms_since(start));
                    tally.unavailable += 1;
                    break;
                }
                Err(_) => {
                    tally.protocol_errors += 1;
                    return tally;
                }
            }
        }
        let start = Instant::now();
        match client.cancel(session) {
            Ok(Response::Cancelled { .. }) => tally.cancel_ms.push(ms_since(start)),
            Ok(Response::Unavailable { .. }) => {
                tally.cancel_ms.push(ms_since(start));
                tally.unavailable += 1;
            }
            Ok(_) | Err(_) => {
                tally.protocol_errors += 1;
                return tally;
            }
        }
    }
    if client.bye().is_err() {
        tally.protocol_errors += 1;
    }
    tally
}

fn ms_since(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1_000.0
}

fn op_stats(name: &'static str, mut samples_ms: Vec<f64>) -> OpStats {
    // Total order instead of "latencies are finite" + panic: a corrupted sample
    // must not kill the report mid-run (R1, ADR-008).
    samples_ms.sort_by(f64::total_cmp);
    let percentile = |q: f64| -> f64 {
        if samples_ms.is_empty() {
            return 0.0;
        }
        let rank = (q * (samples_ms.len() - 1) as f64).round() as usize;
        samples_ms[rank]
    };
    OpStats {
        name,
        count: samples_ms.len(),
        p50_ms: percentile(0.50),
        p99_ms: percentile(0.99),
        max_ms: samples_ms.last().copied().unwrap_or(0.0),
    }
}

impl LoadgenReport {
    /// Renders the report as aligned text lines (the loadgen binary's output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "loadgen: {} connections against {} deployments\n",
            self.connections, self.deployments
        ));
        out.push_str(&format!(
            "admitted {}  rejected {}  unavailable {}  protocol_errors {}  answers {}\n",
            self.admitted, self.rejected, self.unavailable, self.protocol_errors, self.answers
        ));
        out.push_str(&format!(
            "{:<10} {:>8} {:>10} {:>10} {:>10}\n",
            "op", "count", "p50_ms", "p99_ms", "max_ms"
        ));
        for op in &self.ops {
            out.push_str(&format!(
                "{:<10} {:>8} {:>10.3} {:>10.3} {:>10.3}\n",
                op.name, op.count, op.p50_ms, op.p99_ms, op.max_ms
            ));
        }
        out
    }
}
