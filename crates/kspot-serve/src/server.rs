//! The wire front-end: a TCP listener and a fixed worker pool fronting an
//! [`EngineFleet`] (ADR-007).
//!
//! # Architecture
//!
//! One acceptor thread turns incoming TCP connections into non-blocking `Conn`
//! records on a shared ready-queue; a **fixed** pool of worker threads repeatedly
//! pops a connection, services it (flush pending output, read and handle complete
//! frames, flush again) and pushes it back.  A connection is owned by at most one
//! worker at a time, so per-connection state needs no locking; the fleet's own shard
//! locks serialise engine access exactly as for in-process callers.
//!
//! # The trust boundary
//!
//! Everything past `accept()` is untrusted:
//!
//! * **Framing** — length prefixes are capped ([`ServeConfig::max_frame_bytes`]);
//!   an oversized or malformed frame earns a best-effort 400 and a close, since a
//!   violated framing layer cannot be resynchronised.
//! * **Admission** — per-tenant session quotas and the fleet/per-shard caps come
//!   back as 429-style [`Response::Rejected`] frames, not errors; the connection
//!   stays usable.
//! * **Backpressure** — each connection has a bounded outbox
//!   ([`ServeConfig::outbox_capacity_bytes`]).  While it is over budget the worker
//!   stops *reading* from the socket (TCP pushes back on the client) and polls
//!   deliver fewer results per round ([`Response::Flushed`] reports the remainder),
//!   so a slow reader costs bounded memory, never an OOM.
//! * **Panic isolation** — every fleet/session call is wrapped in `catch_unwind`;
//!   a poisoned deployment degrades to 503-style [`Response::Unavailable`] frames
//!   for requests routed at it, while other shards keep serving (ADR-006/007).

use crate::proto::{
    self, decode_request, encode_response, ProtoError, Request, Response, PROTOCOL_VERSION,
    STATUS_ACTIVE, STATUS_CANCELLED, STATUS_COMPLETED,
};
use kspot_core::{AdmissionScope, EngineFleet, FleetError, Session, SessionStatus};
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tenant name billed for connections that never send [`Request::Hello`].
pub const ANONYMOUS_TENANT: &str = "anonymous";

/// Tuning knobs of a [`WireServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Fixed worker threads servicing connections (clamped to at least 1).
    pub workers: usize,
    /// Ceiling on one frame's body; larger length prefixes close the connection.
    pub max_frame_bytes: usize,
    /// Byte budget of each connection's outbox; past it the server stops reading
    /// from that socket and polls deliver fewer results.
    pub outbox_capacity_bytes: usize,
    /// Most concurrently-active sessions one tenant may hold across connections.
    pub max_sessions_per_tenant: usize,
    /// When set, a pacer thread advances every healthy deployment by one epoch at
    /// this interval (for serving without a client driving [`Request::Advance`]).
    pub pacer: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_frame_bytes: proto::DEFAULT_MAX_FRAME_BYTES,
            outbox_capacity_bytes: 256 * 1024,
            max_sessions_per_tenant: 16,
            pacer: None,
        }
    }
}

/// One admitted session as seen by a connection.
struct WireSession {
    session: Session,
    deployment: usize,
    /// The tenant whose quota slot this session holds (pinned at registration, so a
    /// later `Hello` cannot leak or double-free another tenant's slot).
    tenant: String,
    /// Delivery cursor into `Session::results()` (the wire cursor is per-connection
    /// state, independent of the in-process `poll()` cursor).
    cursor: usize,
    /// Whether this session's tenant-quota slot has been given back (on cancel, on
    /// drain-after-completion, or on connection cleanup).
    released: bool,
}

/// Per-connection state; owned by exactly one worker at a time.
struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    /// Encoded frames awaiting the socket; `outbox_bytes` tracks their total size
    /// and `partial` how much of the front frame is already written.
    outbox: VecDeque<Vec<u8>>,
    outbox_bytes: usize,
    partial: usize,
    tenant: String,
    sessions: HashMap<u64, WireSession>,
    next_session: u64,
    /// Set when the connection should close once the outbox drains.
    closing: bool,
    /// EOF or I/O error: drop immediately, outbox or not.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            inbuf: Vec::new(),
            outbox: VecDeque::new(),
            outbox_bytes: 0,
            partial: 0,
            tenant: ANONYMOUS_TENANT.to_string(),
            sessions: HashMap::new(),
            next_session: 1,
            closing: false,
            dead: false,
        }
    }

    fn push_frame(&mut self, frame: Vec<u8>) {
        self.outbox_bytes += frame.len();
        self.outbox.push_back(frame);
    }

    fn push_response(&mut self, resp: &Response) {
        match encode_response(resp) {
            Ok(frame) => self.push_frame(frame),
            // Unreachable with clipped reasons, but a connection is never worth a
            // panic: drop it instead.
            Err(_) => self.dead = true,
        }
    }

    fn done(&self) -> bool {
        self.dead || (self.closing && self.outbox.is_empty())
    }
}

/// Everything the acceptor, workers and pacer share.
struct Shared {
    fleet: EngineFleet,
    config: ServeConfig,
    ready: Mutex<VecDeque<Conn>>,
    ready_cv: Condvar,
    shutdown: AtomicBool,
    /// Active sessions per tenant (the quota ledger).
    tenants: Mutex<HashMap<String, usize>>,
}

impl Shared {
    fn take_quota(&self, tenant: &str) -> Result<(), usize> {
        let mut ledger = self.tenants.lock().expect("tenant ledger poisoned");
        let count = ledger.entry(tenant.to_string()).or_insert(0);
        if *count >= self.config.max_sessions_per_tenant {
            return Err(*count);
        }
        *count += 1;
        Ok(())
    }

    fn release_quota(&self, tenant: &str) {
        let mut ledger = self.tenants.lock().expect("tenant ledger poisoned");
        if let Some(count) = ledger.get_mut(tenant) {
            *count = count.saturating_sub(1);
        }
    }
}

/// A running wire front-end.  Bound to a loopback port on [`WireServer::start`];
/// stopped (joining every thread and cancelling in-flight sessions) by
/// [`WireServer::shutdown`] or on drop.
pub struct WireServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    pacer: Option<JoinHandle<()>>,
}

impl WireServer {
    /// Binds `127.0.0.1:0` and starts the acceptor, worker and (optional) pacer
    /// threads fronting `fleet`.
    pub fn start(fleet: EngineFleet, config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            fleet,
            config: config.clone(),
            ready: Mutex::new(VecDeque::new()),
            ready_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            tenants: Mutex::new(HashMap::new()),
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("kspot-serve-accept".into())
                .spawn(move || accept_loop(listener, shared))?
        };
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("kspot-serve-{i}"))
                    .spawn(move || worker_loop(shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        let pacer = match config.pacer {
            None => None,
            Some(interval) => {
                let shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("kspot-serve-pacer".into())
                        .spawn(move || pacer_loop(shared, interval))?,
                )
            }
        };

        Ok(Self { shared, addr, acceptor: Some(acceptor), workers, pacer })
    }

    /// The loopback address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Health/quota introspection: active sessions currently billed to `tenant`.
    pub fn tenant_sessions(&self, tenant: &str) -> usize {
        self.shared.tenants.lock().expect("tenant ledger poisoned").get(tenant).copied().unwrap_or(0)
    }

    /// The fleet behind this server (e.g. to inspect shard health in tests).
    pub fn fleet(&self) -> &EngineFleet {
        &self.shared.fleet
    }

    /// Stops accepting, drains and closes every connection (cancelling sessions
    /// that are still in flight), joins all threads and returns the fleet.
    pub fn shutdown(mut self) -> EngineFleet {
        self.stop();
        // `stop` joined every thread, so this is the last strong reference.
        let shared = self.shared.clone();
        drop(self);
        match Arc::try_unwrap(shared) {
            Ok(shared) => shared.fleet,
            Err(_) => unreachable!("all server threads were joined"),
        }
    }

    fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor's blocking `accept()` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        self.shared.ready_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.pacer.take() {
            let _ = handle.join();
        }
        // Workers exited; clean up whatever connections are still queued.
        let mut queue = self.shared.ready.lock().expect("ready queue poisoned");
        while let Some(mut conn) = queue.pop_front() {
            cleanup(&self.shared, &mut conn);
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let accepted = listener.accept();
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok((stream, _peer)) = accepted else { continue };
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let mut conn = Conn::new(stream);
        conn.push_response(&Response::Welcome {
            protocol: PROTOCOL_VERSION,
            deployments: shared.fleet.deployments() as u32,
        });
        let mut queue = shared.ready.lock().expect("ready queue poisoned");
        queue.push_back(conn);
        drop(queue);
        shared.ready_cv.notify_one();
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let conn = {
            let mut queue = shared.ready.lock().expect("ready queue poisoned");
            loop {
                if let Some(conn) = queue.pop_front() {
                    break Some(conn);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (q, _) = shared
                    .ready_cv
                    .wait_timeout(queue, Duration::from_millis(10))
                    .expect("ready queue poisoned");
                queue = q;
            }
        };
        let Some(mut conn) = conn else { return };

        if shared.shutdown.load(Ordering::SeqCst) {
            // Drain politely: one last flush, then close.
            let _ = flush_outbox(&mut conn);
            cleanup(&shared, &mut conn);
            continue;
        }

        let progressed = service(&shared, &mut conn);
        if conn.done() {
            cleanup(&shared, &mut conn);
            continue;
        }
        if !progressed {
            // Idle connection: brief backoff so a quiet fleet of connections does
            // not spin the worker pool at 100% CPU.
            std::thread::sleep(Duration::from_micros(200));
        }
        let mut queue = shared.ready.lock().expect("ready queue poisoned");
        queue.push_back(conn);
        drop(queue);
        shared.ready_cv.notify_one();
    }
}

fn pacer_loop(shared: Arc<Shared>, interval: Duration) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        let _poisoned = shared.fleet.run_epochs_surviving(1);
        std::thread::sleep(interval);
    }
}

/// Releases the connection's resources: unreleased sessions are cancelled and their
/// quota slots returned.
fn cleanup(shared: &Shared, conn: &mut Conn) {
    let _ = conn.stream.shutdown(std::net::Shutdown::Both);
    for (_, mut wire) in conn.sessions.drain() {
        if !wire.released {
            // A poisoned shard panics on cancel; the slot is released either way.
            let _ = catch_unwind(AssertUnwindSafe(|| wire.session.cancel()));
            shared.release_quota(&wire.tenant);
        }
    }
}

/// One service round: flush, read (unless over the outbox budget), handle complete
/// frames, flush again.  Returns whether any bytes moved or frames were handled.
fn service(shared: &Shared, conn: &mut Conn) -> bool {
    let mut progressed = flush_outbox(conn);
    if conn.dead || conn.closing {
        return progressed;
    }

    // Backpressure: while the outbox is over budget the socket is not read, so the
    // peer's TCP window fills and the slow reader is throttled at its own pace.
    if conn.outbox_bytes < shared.config.outbox_capacity_bytes {
        progressed |= read_some(conn, shared.config.max_frame_bytes);
    }

    loop {
        match proto::extract_frame(&mut conn.inbuf, shared.config.max_frame_bytes) {
            Ok(None) => break,
            Ok(Some(body)) => {
                progressed = true;
                handle_frame(shared, conn, &body);
                if conn.closing || conn.dead {
                    break;
                }
            }
            Err(e) => {
                progressed = true;
                conn.push_response(&Response::Error { code: 400, reason: e.to_string() });
                conn.closing = true;
                break;
            }
        }
    }

    progressed |= flush_outbox(conn);
    progressed
}

/// Writes as much of the outbox as the socket accepts right now.
fn flush_outbox(conn: &mut Conn) -> bool {
    let mut progressed = false;
    while let Some(front) = conn.outbox.front() {
        match conn.stream.write(&front[conn.partial..]) {
            Ok(0) => {
                conn.dead = true;
                return progressed;
            }
            Ok(n) => {
                progressed = true;
                conn.partial += n;
                conn.outbox_bytes -= n;
                if conn.partial == front.len() {
                    conn.outbox.pop_front();
                    conn.partial = 0;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return progressed,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return progressed;
            }
        }
    }
    progressed
}

/// Reads whatever the socket has ready into the connection buffer, stopping once
/// the buffer holds at least two maximum-size frames — a peer that streams bytes
/// faster than we handle frames still costs bounded memory.
fn read_some(conn: &mut Conn, max_frame: usize) -> bool {
    let mut progressed = false;
    let mut chunk = [0u8; 4096];
    loop {
        if conn.inbuf.len() > 2 * (4 + max_frame) {
            return progressed;
        }
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.dead = true;
                return progressed;
            }
            Ok(n) => {
                progressed = true;
                conn.inbuf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return progressed,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return progressed;
            }
        }
    }
}

fn handle_frame(shared: &Shared, conn: &mut Conn, body: &[u8]) {
    let request = match decode_request(body) {
        Ok(request) => request,
        Err(e @ (ProtoError::BadTag(_) | ProtoError::Truncated | ProtoError::TrailingBytes)) => {
            // Framing is intact but the body is garbage — the stream itself cannot
            // be trusted any further.
            conn.push_response(&Response::Error { code: 400, reason: e.to_string() });
            conn.closing = true;
            return;
        }
        Err(e) => {
            conn.push_response(&Response::Error { code: 400, reason: e.to_string() });
            return;
        }
    };
    match request {
        Request::Hello { tenant } => {
            conn.tenant = if tenant.is_empty() { ANONYMOUS_TENANT.to_string() } else { tenant };
        }
        Request::Register { deployment, sql } => handle_register(shared, conn, deployment, &sql),
        Request::Poll { session, max } => handle_poll(shared, conn, session, max),
        Request::Cancel { session } => handle_cancel(shared, conn, session),
        Request::Advance { epochs } => {
            let epochs = epochs.min(1024); // a wire request cannot spin the fleet for hours
            let poisoned = shared.fleet.run_epochs_surviving(epochs as usize);
            conn.push_response(&Response::Advanced {
                epochs,
                poisoned: poisoned.into_iter().map(|d| d as u32).collect(),
            });
        }
        Request::Bye => {
            conn.push_response(&Response::Bye);
            conn.closing = true;
        }
    }
}

fn handle_register(shared: &Shared, conn: &mut Conn, deployment: u32, sql: &str) {
    if shared.take_quota(&conn.tenant).is_err() {
        conn.push_response(&Response::Rejected {
            code: 429,
            reason: format!(
                "tenant `{}` already holds {} active sessions (quota)",
                conn.tenant, shared.config.max_sessions_per_tenant
            ),
        });
        return;
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        shared.fleet.try_register(deployment as usize, sql)
    }));
    let response = match outcome {
        Ok(Ok(session)) => {
            let wire_id = conn.next_session;
            conn.next_session += 1;
            let algorithm = session.algorithm().to_string();
            conn.sessions.insert(
                wire_id,
                WireSession {
                    session,
                    deployment: deployment as usize,
                    tenant: conn.tenant.clone(),
                    cursor: 0,
                    released: false,
                },
            );
            conn.push_response(&Response::Registered {
                session: wire_id,
                deployment,
                algorithm,
            });
            return;
        }
        Ok(Err(e)) => fleet_error_response(e),
        Err(_) => Response::Unavailable {
            code: 503,
            deployment,
            reason: format!("deployment {deployment} panicked during registration"),
        },
    };
    shared.release_quota(&conn.tenant);
    conn.push_response(&response);
}

/// Maps the fleet's typed error surface onto wire frames (the whole point of
/// [`EngineFleet::try_register`] — see ADR-007's error taxonomy).
fn fleet_error_response(e: FleetError) -> Response {
    match e {
        FleetError::Rejected { scope, active, cap } => Response::Rejected {
            code: 429,
            reason: match scope {
                AdmissionScope::Fleet => {
                    format!("fleet admission rejected: {active} active sessions (cap {cap})")
                }
                AdmissionScope::Deployment(d) => format!(
                    "deployment {d} admission rejected: {active} active sessions (cap {cap})"
                ),
            },
        },
        FleetError::Unhealthy { deployment } => Response::Unavailable {
            code: 503,
            deployment: deployment as u32,
            reason: format!("deployment {deployment} is poisoned"),
        },
        e @ (FleetError::UnknownDeployment { .. } | FleetError::Query(_)) => {
            Response::Error { code: 400, reason: e.to_string() }
        }
    }
}

fn handle_poll(shared: &Shared, conn: &mut Conn, wire_id: u64, max: u32) {
    let Some(wire) = conn.sessions.get_mut(&wire_id) else {
        conn.push_response(&Response::Error {
            code: 400,
            reason: format!("unknown session {wire_id}"),
        });
        return;
    };
    let snapshot = catch_unwind(AssertUnwindSafe(|| {
        (wire.session.results(), wire.session.status())
    }));
    let Ok((results, status)) = snapshot else {
        let deployment = wire.deployment;
        conn.push_response(&Response::Unavailable {
            code: 503,
            deployment: deployment as u32,
            reason: format!("deployment {deployment} is poisoned"),
        });
        return;
    };

    // Deliver from the wire cursor, bounded by the client's `max` AND the outbox
    // byte budget: a slow reader gets fewer answers per poll (plus the pending
    // count), never an unbounded outbox.
    let budget = shared.config.outbox_capacity_bytes;
    let pending_total = results.len().saturating_sub(wire.cursor);
    let mut delivered = 0u32;
    let mut frames = Vec::new();
    let mut frames_bytes = 0usize;
    for result in results.iter().skip(wire.cursor).take(max as usize) {
        let frame = match encode_response(&Response::Answer {
            session: wire_id,
            epoch: result.epoch,
            items: result.items.iter().map(|i| (i.key, i.value)).collect(),
        }) {
            Ok(frame) => frame,
            Err(_) => break, // an absurdly wide answer; stop delivering, keep pending
        };
        if conn.outbox_bytes + frames_bytes + frame.len() > budget {
            break;
        }
        frames_bytes += frame.len();
        frames.push(frame);
        delivered += 1;
    }
    wire.cursor += delivered as usize;
    let pending = (pending_total - delivered as usize) as u32;
    let status_byte = match status {
        SessionStatus::Active => STATUS_ACTIVE,
        SessionStatus::Completed => STATUS_COMPLETED,
        SessionStatus::Cancelled => STATUS_CANCELLED,
    };
    // A finished session whose results are fully delivered stops counting against
    // the tenant's quota.
    if status != SessionStatus::Active && pending == 0 && !wire.released {
        wire.released = true;
        shared.release_quota(&wire.tenant);
    }
    for frame in frames {
        conn.push_frame(frame);
    }
    conn.push_response(&Response::Flushed {
        session: wire_id,
        delivered,
        pending,
        status: status_byte,
    });
}

fn handle_cancel(shared: &Shared, conn: &mut Conn, wire_id: u64) {
    let Some(wire) = conn.sessions.get_mut(&wire_id) else {
        conn.push_response(&Response::Error {
            code: 400,
            reason: format!("unknown session {wire_id}"),
        });
        return;
    };
    let was_active =
        catch_unwind(AssertUnwindSafe(|| wire.session.cancel())).unwrap_or(false);
    if !wire.released {
        wire.released = true;
        shared.release_quota(&wire.tenant);
    }
    // The entry stays: results produced before the cancel remain drainable via
    // `Poll` (which now reports `STATUS_CANCELLED`) until the connection closes.
    conn.push_response(&Response::Cancelled { session: wire_id, was_active });
}
