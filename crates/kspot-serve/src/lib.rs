//! # kspot-serve — the wire front-end of the KSpot engine fleet
//!
//! Everything below this crate ([`kspot_core`]'s engines, fleets and sessions) is a
//! library trusted to be driven by well-behaved Rust callers.  This crate is where
//! that assumption ends: a TCP listener speaking a hand-rolled length-prefixed
//! binary protocol (ADR-007), fronting an [`kspot_core::EngineFleet`] with
//!
//! * **admission control** — per-tenant session quotas plus the fleet's own caps,
//!   surfaced as 429-style `Rejected` frames instead of errors,
//! * **backpressure** — per-connection bounded outboxes; slow readers are throttled
//!   via TCP instead of growing server memory,
//! * **panic isolation** — a poisoned deployment degrades to 503-style
//!   `Unavailable` frames for its own requests while the rest of the fleet keeps
//!   serving (never process death),
//! * **input hardening** — every frame is bounds-checked before allocation, and
//!   the SQL it carries goes through a parser that is fuzzed to never panic.
//!
//! The crate is pure `std::net` + threads — no async runtime — matching the
//! workspace's hermetic, dependency-free design (ADR-001).
//!
//! ```no_run
//! use kspot_core::{EngineFleet, ScenarioConfig, WorkloadSpec};
//! use kspot_net::{NetworkConfig, RoomModelParams};
//! use kspot_serve::{ServeConfig, WireServer, WireClient, Request, Response};
//! use std::time::Duration;
//!
//! let fleet = EngineFleet::homogeneous(
//!     ScenarioConfig::conference(),
//!     WorkloadSpec::RoomCorrelated(RoomModelParams::default()),
//!     NetworkConfig::mica2(),
//!     7, 4, 4,
//! );
//! let server = WireServer::start(fleet, ServeConfig::default()).unwrap();
//! let mut client = WireClient::connect(server.addr(), Duration::from_secs(5)).unwrap();
//! client.hello("acme").unwrap();
//! let reply = client
//!     .register(0, "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid")
//!     .unwrap();
//! if let Response::Registered { session, .. } = reply {
//!     client.advance(5).unwrap();
//!     let outcome = client.poll(session, 32).unwrap();
//!     println!("{} answers", outcome.answers.len());
//! }
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod loadgen;
pub mod proto;
pub mod server;

pub use client::{ClientError, PollOutcome, WireClient};
pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenReport, OpStats};
pub use proto::{ProtoError, Request, Response, PROTOCOL_VERSION};
pub use server::{ServeConfig, WireServer, ANONYMOUS_TENANT};
