//! Loadgen binary: drive hundreds of concurrent wire clients against an in-process
//! [`kspot_serve::WireServer`] and print per-op latency percentiles (E16).
//!
//! ```text
//! cargo run --release -p kspot-serve --bin loadgen -- \
//!     --connections 320 --deployments 4 --polls 8
//! ```
//!
//! Exits non-zero if any protocol error occurred — the wire layer's acceptance bar.

use kspot_serve::{run_loadgen, LoadgenConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--connections N] [--deployments N] [--threads N] [--workers N]\n\
         \x20              [--polls N] [--poll-max N] [--tenants N] [--tenant-quota N]\n\
         \x20              [--fleet-cap N] [--pacer-ms N] [--seed N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = LoadgenConfig::default();
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let Some(value) = argv.next() else { usage() };
        let Ok(n) = value.parse::<u64>() else { usage() };
        match flag.as_str() {
            "--connections" => config.connections = n as usize,
            "--deployments" => config.deployments = (n as usize).max(1),
            "--threads" => config.threads = (n as usize).max(1),
            "--workers" => config.workers = (n as usize).max(1),
            "--polls" => config.polls_per_connection = n as usize,
            "--poll-max" => config.poll_max = n as u32,
            "--tenants" => config.tenants = (n as usize).max(1),
            "--tenant-quota" => config.tenant_quota = (n as usize).max(1),
            "--fleet-cap" => config.fleet_cap = (n as usize).max(1),
            "--pacer-ms" => config.pacer = Duration::from_millis(n.max(1)),
            "--seed" => config.seed = n,
            _ => usage(),
        }
    }
    let report = run_loadgen(&config);
    print!("{}", report.render());
    if report.protocol_errors > 0 {
        std::process::exit(1);
    }
}
