//! The KSpot wire protocol: length-prefixed binary frames over TCP (ADR-007).
//!
//! Every frame is a **u32 big-endian body length** followed by the body; the body's
//! first byte is a tag selecting the message, the rest are fixed-width big-endian
//! integers, `f64::to_bits` floats and `u16`-length-prefixed UTF-8 strings.  Requests
//! use tags `0x01..=0x06`, responses `0x81..=0x8A` — the high bit makes a response
//! frame unmistakable for a request even if a peer desynchronises.
//!
//! Decoding is written for **untrusted bytes**: every read is bounds-checked, element
//! counts are validated against the bytes actually remaining before any allocation
//! (a 4-byte count field must never make the server allocate gigabytes), and a
//! malformed body is a typed [`ProtoError`], never a panic.

use std::fmt;

/// Protocol revision carried in [`Response::Welcome`]; bumped on any incompatible
/// frame change.
pub const PROTOCOL_VERSION: u16 = 1;

/// Default ceiling on one frame's body, generous for any legitimate query yet small
/// enough that a hostile length prefix cannot balloon the connection buffer.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 64 * 1024;

/// Longest reason string the server puts in an error frame; longer ones are clipped
/// so an error path can never produce an oversized response.
pub const MAX_REASON_BYTES: usize = 1024;

/// Wire status of a session inside [`Response::Flushed`].
pub const STATUS_ACTIVE: u8 = 0;
/// See [`STATUS_ACTIVE`].
pub const STATUS_COMPLETED: u8 = 1;
/// See [`STATUS_ACTIVE`].
pub const STATUS_CANCELLED: u8 = 2;

/// A malformed or hostile frame.  The connection that produced one is closed after a
/// best-effort [`Response::Error`]; there is no way to resynchronise a byte stream
/// whose framing has been violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The body ended before the message it declared was complete.
    Truncated,
    /// The first body byte is not a known message tag.
    BadTag(u8),
    /// A string field is not valid UTF-8.
    BadString,
    /// The body continued past the end of the message.
    TrailingBytes,
    /// The length prefix exceeds the configured frame ceiling.
    Oversize {
        /// Declared body length.
        declared: usize,
        /// The ceiling it violated.
        max: usize,
    },
    /// A string passed to the encoder exceeds the u16 length prefix.
    StringTooLong(usize),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "frame body truncated mid-message"),
            ProtoError::BadTag(t) => write!(f, "unknown message tag 0x{t:02x}"),
            ProtoError::BadString => write!(f, "string field is not valid UTF-8"),
            ProtoError::TrailingBytes => write!(f, "frame body has trailing bytes"),
            ProtoError::Oversize { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds the {max}-byte ceiling")
            }
            ProtoError::StringTooLong(n) => {
                write!(f, "string of {n} bytes exceeds the u16 length prefix")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Identifies the tenant this connection bills its sessions to.  Optional; a
    /// connection that never says hello is the `"anonymous"` tenant.
    Hello {
        /// Tenant name (quota key).
        tenant: String,
    },
    /// Registers a query on a deployment; answered by [`Response::Registered`] or a
    /// rejection/error frame.
    Register {
        /// Target deployment id.
        deployment: u32,
        /// The query, in the KSpot SQL dialect.
        sql: String,
    },
    /// Asks for up to `max` undelivered results of a session; answered by zero or
    /// more [`Response::Answer`] frames and exactly one [`Response::Flushed`].
    Poll {
        /// Wire session id from [`Response::Registered`].
        session: u64,
        /// Most results to deliver in this poll.
        max: u32,
    },
    /// Cancels a session; answered by [`Response::Cancelled`].
    Cancel {
        /// Wire session id.
        session: u64,
    },
    /// Advances every healthy deployment by `epochs` epochs; answered by
    /// [`Response::Advanced`].
    Advance {
        /// Epochs to run.
        epochs: u32,
    },
    /// Polite close; the server answers [`Response::Bye`] and closes.
    Bye,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// First frame on every connection.
    Welcome {
        /// [`PROTOCOL_VERSION`] of the server.
        protocol: u16,
        /// How many deployments the fleet serves (ids `0..deployments`).
        deployments: u32,
    },
    /// A session was admitted.
    Registered {
        /// Wire session id for subsequent [`Request::Poll`]/[`Request::Cancel`].
        session: u64,
        /// The deployment it landed on.
        deployment: u32,
        /// The algorithm the engine chose for the plan.
        algorithm: String,
    },
    /// One ranked epoch answer of a polled session.
    Answer {
        /// Wire session id.
        session: u64,
        /// The epoch the answer refers to.
        epoch: u64,
        /// `(key, value)` pairs, best first.
        items: Vec<(u64, f64)>,
    },
    /// Terminates every poll: how much was delivered, how much is still pending
    /// (backpressure may deliver less than `max`), and the session's status.
    Flushed {
        /// Wire session id.
        session: u64,
        /// Answers delivered by this poll.
        delivered: u32,
        /// Results still undelivered (poll again to drain).
        pending: u32,
        /// One of [`STATUS_ACTIVE`], [`STATUS_COMPLETED`], [`STATUS_CANCELLED`].
        status: u8,
    },
    /// Admission control refused the request (429-style): a quota or cap is full.
    /// Retry later; the connection stays open.
    Rejected {
        /// HTTP-flavoured status code (429).
        code: u16,
        /// Human-readable reason.
        reason: String,
    },
    /// The request was malformed (400-style): bad SQL, unknown session, bad frame.
    Error {
        /// HTTP-flavoured status code (400).
        code: u16,
        /// Human-readable reason.
        reason: String,
    },
    /// The target deployment is poisoned (503-style); only that shard is affected.
    Unavailable {
        /// HTTP-flavoured status code (503).
        code: u16,
        /// The poisoned deployment.
        deployment: u32,
        /// Human-readable reason.
        reason: String,
    },
    /// A session was cancelled.
    Cancelled {
        /// Wire session id.
        session: u64,
        /// Whether the session was still active when cancelled.
        was_active: bool,
    },
    /// Epochs ran; `poisoned` lists every deployment currently poisoned.
    Advanced {
        /// Epochs that ran on each healthy deployment.
        epochs: u32,
        /// Sorted ids of all currently-poisoned deployments.
        poisoned: Vec<u32>,
    },
    /// Acknowledges [`Request::Bye`].
    Bye,
}

// --- encoding ---------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) -> Result<(), ProtoError> {
    let len = u16::try_from(s.len()).map_err(|_| ProtoError::StringTooLong(s.len()))?;
    put_u16(out, len);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

/// Clips a reason string to [`MAX_REASON_BYTES`] on a char boundary so error frames
/// are always encodable.
pub fn clip_reason(reason: &str) -> &str {
    if reason.len() <= MAX_REASON_BYTES {
        return reason;
    }
    let cut = (0..=MAX_REASON_BYTES).rev().find(|&i| reason.is_char_boundary(i)).unwrap_or(0);
    &reason[..cut]
}

fn encode_body(out: &mut Vec<u8>, msg: &Message<'_>) -> Result<(), ProtoError> {
    match msg {
        Message::Req(req) => match req {
            Request::Hello { tenant } => {
                out.push(0x01);
                put_str(out, tenant)?;
            }
            Request::Register { deployment, sql } => {
                out.push(0x02);
                put_u32(out, *deployment);
                put_str(out, sql)?;
            }
            Request::Poll { session, max } => {
                out.push(0x03);
                put_u64(out, *session);
                put_u32(out, *max);
            }
            Request::Cancel { session } => {
                out.push(0x04);
                put_u64(out, *session);
            }
            Request::Advance { epochs } => {
                out.push(0x05);
                put_u32(out, *epochs);
            }
            Request::Bye => out.push(0x06),
        },
        Message::Resp(resp) => match resp {
            Response::Welcome { protocol, deployments } => {
                out.push(0x81);
                put_u16(out, *protocol);
                put_u32(out, *deployments);
            }
            Response::Registered { session, deployment, algorithm } => {
                out.push(0x82);
                put_u64(out, *session);
                put_u32(out, *deployment);
                put_str(out, algorithm)?;
            }
            Response::Answer { session, epoch, items } => {
                out.push(0x83);
                put_u64(out, *session);
                put_u64(out, *epoch);
                put_u32(out, items.len() as u32);
                for (key, value) in items {
                    put_u64(out, *key);
                    put_u64(out, value.to_bits());
                }
            }
            Response::Flushed { session, delivered, pending, status } => {
                out.push(0x84);
                put_u64(out, *session);
                put_u32(out, *delivered);
                put_u32(out, *pending);
                out.push(*status);
            }
            Response::Rejected { code, reason } => {
                out.push(0x85);
                put_u16(out, *code);
                put_str(out, clip_reason(reason))?;
            }
            Response::Error { code, reason } => {
                out.push(0x86);
                put_u16(out, *code);
                put_str(out, clip_reason(reason))?;
            }
            Response::Unavailable { code, deployment, reason } => {
                out.push(0x87);
                put_u16(out, *code);
                put_u32(out, *deployment);
                put_str(out, clip_reason(reason))?;
            }
            Response::Cancelled { session, was_active } => {
                out.push(0x88);
                put_u64(out, *session);
                out.push(u8::from(*was_active));
            }
            Response::Advanced { epochs, poisoned } => {
                out.push(0x89);
                put_u32(out, *epochs);
                put_u32(out, poisoned.len() as u32);
                for d in poisoned {
                    put_u32(out, *d);
                }
            }
            Response::Bye => out.push(0x8A),
        },
    }
    Ok(())
}

enum Message<'a> {
    Req(&'a Request),
    Resp(&'a Response),
}

fn encode_frame(msg: &Message<'_>) -> Result<Vec<u8>, ProtoError> {
    let mut out = vec![0u8; 4];
    encode_body(&mut out, msg)?;
    let body_len = (out.len() - 4) as u32;
    out[..4].copy_from_slice(&body_len.to_be_bytes());
    Ok(out)
}

/// Encodes a request as a complete frame (length prefix included).
pub fn encode_request(req: &Request) -> Result<Vec<u8>, ProtoError> {
    encode_frame(&Message::Req(req))
}

/// Encodes a response as a complete frame (length prefix included).
pub fn encode_response(resp: &Response) -> Result<Vec<u8>, ProtoError> {
    encode_frame(&Message::Resp(resp))
}

// --- decoding ---------------------------------------------------------------------

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.remaining() < n {
            return Err(ProtoError::Truncated);
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn str(&mut self) -> Result<String, ProtoError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadString)
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes)
        }
    }

    /// Validates a declared element count against the bytes actually left, so a
    /// hostile count can never drive a huge allocation.
    fn count(&self, declared: u32, elem_bytes: usize) -> Result<usize, ProtoError> {
        let declared = declared as usize;
        if declared.checked_mul(elem_bytes).is_none_or(|need| need > self.remaining()) {
            return Err(ProtoError::Truncated);
        }
        Ok(declared)
    }
}

/// Decodes one request body (the bytes after the length prefix).
pub fn decode_request(body: &[u8]) -> Result<Request, ProtoError> {
    let mut c = Cursor::new(body);
    let req = match c.u8()? {
        0x01 => Request::Hello { tenant: c.str()? },
        0x02 => Request::Register { deployment: c.u32()?, sql: c.str()? },
        0x03 => Request::Poll { session: c.u64()?, max: c.u32()? },
        0x04 => Request::Cancel { session: c.u64()? },
        0x05 => Request::Advance { epochs: c.u32()? },
        0x06 => Request::Bye,
        tag => return Err(ProtoError::BadTag(tag)),
    };
    c.finish()?;
    Ok(req)
}

/// Decodes one response body (the bytes after the length prefix).
pub fn decode_response(body: &[u8]) -> Result<Response, ProtoError> {
    let mut c = Cursor::new(body);
    let resp = match c.u8()? {
        0x81 => Response::Welcome { protocol: c.u16()?, deployments: c.u32()? },
        0x82 => Response::Registered {
            session: c.u64()?,
            deployment: c.u32()?,
            algorithm: c.str()?,
        },
        0x83 => {
            let session = c.u64()?;
            let epoch = c.u64()?;
            let declared = c.u32()?;
            let n = c.count(declared, 16)?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push((c.u64()?, f64::from_bits(c.u64()?)));
            }
            Response::Answer { session, epoch, items }
        }
        0x84 => Response::Flushed {
            session: c.u64()?,
            delivered: c.u32()?,
            pending: c.u32()?,
            status: c.u8()?,
        },
        0x85 => Response::Rejected { code: c.u16()?, reason: c.str()? },
        0x86 => Response::Error { code: c.u16()?, reason: c.str()? },
        0x87 => Response::Unavailable {
            code: c.u16()?,
            deployment: c.u32()?,
            reason: c.str()?,
        },
        0x88 => Response::Cancelled { session: c.u64()?, was_active: c.u8()? != 0 },
        0x89 => {
            let epochs = c.u32()?;
            let declared = c.u32()?;
            let n = c.count(declared, 4)?;
            let mut poisoned = Vec::with_capacity(n);
            for _ in 0..n {
                poisoned.push(c.u32()?);
            }
            Response::Advanced { epochs, poisoned }
        }
        0x8A => Response::Bye,
        tag => return Err(ProtoError::BadTag(tag)),
    };
    c.finish()?;
    Ok(resp)
}

/// Extracts one complete frame body from the front of `buf`, or `None` if more bytes
/// are needed.  An oversized length prefix is a hard error — the connection cannot be
/// resynchronised and must be closed.
pub fn extract_frame(buf: &mut Vec<u8>, max_frame: usize) -> Result<Option<Vec<u8>>, ProtoError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let declared = u32::from_be_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
    if declared > max_frame {
        return Err(ProtoError::Oversize { declared, max: max_frame });
    }
    if buf.len() < 4 + declared {
        return Ok(None);
    }
    let body = buf[4..4 + declared].to_vec();
    buf.drain(..4 + declared);
    Ok(Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let frame = encode_request(&req).expect("encodes");
        let mut buf = frame.clone();
        let body = extract_frame(&mut buf, DEFAULT_MAX_FRAME_BYTES)
            .expect("valid frame")
            .expect("complete frame");
        assert!(buf.is_empty());
        assert_eq!(decode_request(&body).expect("decodes"), req);
    }

    fn roundtrip_resp(resp: Response) {
        let frame = encode_response(&resp).expect("encodes");
        let body = frame[4..].to_vec();
        assert_eq!(decode_response(&body).expect("decodes"), resp);
    }

    #[test]
    fn every_message_roundtrips() {
        roundtrip_req(Request::Hello { tenant: "acme".into() });
        roundtrip_req(Request::Register { deployment: 3, sql: "SELECT TOP 1 ...".into() });
        roundtrip_req(Request::Poll { session: u64::MAX, max: 32 });
        roundtrip_req(Request::Cancel { session: 7 });
        roundtrip_req(Request::Advance { epochs: 10 });
        roundtrip_req(Request::Bye);

        roundtrip_resp(Response::Welcome { protocol: PROTOCOL_VERSION, deployments: 4 });
        roundtrip_resp(Response::Registered {
            session: 1,
            deployment: 0,
            algorithm: "INT".into(),
        });
        roundtrip_resp(Response::Answer {
            session: 1,
            epoch: 42,
            items: vec![(3, 1.5), (9, -0.25)],
        });
        roundtrip_resp(Response::Flushed {
            session: 1,
            delivered: 2,
            pending: 5,
            status: STATUS_ACTIVE,
        });
        roundtrip_resp(Response::Rejected { code: 429, reason: "quota".into() });
        roundtrip_resp(Response::Error { code: 400, reason: "bad".into() });
        roundtrip_resp(Response::Unavailable {
            code: 503,
            deployment: 2,
            reason: "poisoned".into(),
        });
        roundtrip_resp(Response::Cancelled { session: 1, was_active: true });
        roundtrip_resp(Response::Advanced { epochs: 5, poisoned: vec![1, 3] });
        roundtrip_resp(Response::Bye);
    }

    #[test]
    fn hostile_bodies_decode_to_errors_never_panics() {
        assert_eq!(decode_request(&[]), Err(ProtoError::Truncated));
        assert_eq!(decode_request(&[0x7f]), Err(ProtoError::BadTag(0x7f)));
        assert_eq!(decode_request(&[0x03, 0, 0]), Err(ProtoError::Truncated));
        assert_eq!(decode_request(&[0x06, 0xff]), Err(ProtoError::TrailingBytes));
        // Hello with a length prefix past the end of the body.
        assert_eq!(decode_request(&[0x01, 0xff, 0xff, b'a']), Err(ProtoError::Truncated));
        // Hello with invalid UTF-8.
        assert_eq!(decode_request(&[0x01, 0x00, 0x01, 0xc0]), Err(ProtoError::BadString));
        // Answer whose item count claims more elements than bytes remain: must fail
        // without allocating for the declared count.
        let mut body = vec![0x83];
        body.extend_from_slice(&1u64.to_be_bytes());
        body.extend_from_slice(&2u64.to_be_bytes());
        body.extend_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(decode_response(&body), Err(ProtoError::Truncated));
    }

    #[test]
    fn oversized_and_partial_frames_are_handled() {
        let mut buf = Vec::new();
        assert_eq!(extract_frame(&mut buf, 64), Ok(None));

        // Partial header, then partial body, then the rest.
        let frame = encode_request(&Request::Cancel { session: 5 }).unwrap();
        buf.extend_from_slice(&frame[..2]);
        assert_eq!(extract_frame(&mut buf, 64), Ok(None));
        buf.extend_from_slice(&frame[2..6]);
        assert_eq!(extract_frame(&mut buf, 64), Ok(None));
        buf.extend_from_slice(&frame[6..]);
        let body = extract_frame(&mut buf, 64).unwrap().unwrap();
        assert_eq!(decode_request(&body), Ok(Request::Cancel { session: 5 }));

        // A hostile length prefix fails before any buffering.
        let mut buf = u32::MAX.to_be_bytes().to_vec();
        assert_eq!(
            extract_frame(&mut buf, 64),
            Err(ProtoError::Oversize { declared: u32::MAX as usize, max: 64 })
        );
    }

    #[test]
    fn reasons_are_clipped_on_char_boundaries() {
        let long = "é".repeat(MAX_REASON_BYTES); // 2 bytes per char
        let clipped = clip_reason(&long);
        assert!(clipped.len() <= MAX_REASON_BYTES);
        assert!(clipped.is_char_boundary(clipped.len()));
        assert_eq!(clip_reason("short"), "short");
    }
}
