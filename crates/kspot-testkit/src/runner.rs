//! Drives every algorithm through a scenario cell and applies the invariant checkers.
//!
//! ## What is asserted where
//!
//! * **Every cell, every algorithm**: ledger conservation over the run's
//!   [`kspot_net::NetworkMetrics`]; answers structurally well-formed; runs
//!   deterministic (same cell twice → identical answers and totals).
//! * **Clean epochs** (no payload dropped after its ARQ retries — always true on
//!   lossless cells, and the common case on lossy cells thanks to the retransmit
//!   budget): every *exact* snapshot algorithm (MINT, TAG, centralized) must agree
//!   rank-for-rank with the oracle restricted to participating nodes, and every exact
//!   historic algorithm (TJA, TPUT, centralized windows) with the participating-window
//!   oracle.  Death and duty-cycle cells are covered by this branch — participation
//!   changes, but nothing is dropped — so degraded cells are *checked*, not skipped.
//! * **Dirty epochs** (something was dropped): the answer may legitimately diverge —
//!   exactness is scoped to delivered data — so the checks fall back to the
//!   unconditional floor (well-formedness, ledgers, determinism).
//! * **Lossless cells only**: the paper's cost ordering — MINT's view tuples never
//!   exceed TAG's, TAG's bytes never exceed centralized collection's, and on clustered
//!   deployments MINT's total bytes stay below centralized collection's.

use crate::invariants::{check_ledger, check_matches_oracle, check_well_formed};
use crate::oracle::{node_membership_oracle, participating_nodes, snapshot_oracle};
use crate::scenario::{ScenarioCell, TopologyKind, WorkloadProfile};
use kspot_algos::historic::HistoricAlgorithm;
use kspot_algos::{
    CentralizedCollection, CentralizedHistoric, FilaMonitor, HistoricDataset,
    LocalAggregateHistoric, MintViews, NaiveLocalPrune, SnapshotAlgorithm, SnapshotSpec, TagTopK,
    Tja, TopKResult, Tput,
};
use kspot_net::types::ValueDomain;
use kspot_net::{Epoch, NetworkMetrics, PhaseTag, PhaseTotals};
use kspot_query::AggFunc;
use std::collections::BTreeSet;

/// The verdict of one cell: the cell's label plus every invariant violation found.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Human-readable cell identifier.
    pub label: String,
    /// Every violation found (empty = the cell passed).
    pub violations: Vec<String>,
}

impl CellOutcome {
    /// True when no invariant was violated.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One snapshot algorithm's full run over a cell: per-epoch answers, per-epoch
/// cleanliness, and the final metrics.
struct SnapshotRun {
    results: Vec<TopKResult>,
    clean_epochs: Vec<bool>,
    totals: PhaseTotals,
    update_tuples: u64,
    ledger_violations: Vec<String>,
}

fn drive_snapshot(cell: &ScenarioCell, algo: &mut dyn SnapshotAlgorithm) -> SnapshotRun {
    let d = cell.deployment();
    let mut net = cell.network(&d);
    let mut workload = cell.workload(&d);
    let mut results = Vec::with_capacity(cell.epochs);
    let mut clean_epochs = Vec::with_capacity(cell.epochs);
    for e in 0..cell.epochs as Epoch {
        let readings = workload.next_epoch();
        net.begin_epoch(e);
        results.push(algo.execute_epoch(&mut net, &readings));
        clean_epochs.push(net.metrics().epoch(e).dropped_messages == 0);
    }
    let metrics: &NetworkMetrics = net.metrics();
    SnapshotRun {
        results,
        clean_epochs,
        totals: metrics.totals(),
        update_tuples: metrics.phase(PhaseTag::Creation).tuples
            + metrics.phase(PhaseTag::Update).tuples,
        ledger_violations: check_ledger(metrics),
    }
}

/// Runs every snapshot algorithm through the cell and differentially checks them
/// against the participation-scoped oracle and each other.
pub fn run_snapshot_cell(cell: &ScenarioCell) -> CellOutcome {
    let label = cell.label();
    let mut violations = Vec::new();
    let d = cell.deployment();
    let plan = cell.fault_plan(&d);
    let spec = cell.snapshot_spec();
    let group_keys: BTreeSet<u64> = d.group_members().keys().map(|&g| u64::from(g)).collect();

    // Reference readings, regenerated from the same workload stream the algorithms
    // saw, and the per-epoch oracle every exact strategy is compared against.
    let mut reference_workload = cell.workload(&d);
    let reference: Vec<Vec<kspot_net::Reading>> =
        (0..cell.epochs).map(|_| reference_workload.next_epoch()).collect();
    let oracles: Vec<TopKResult> =
        reference.iter().map(|r| snapshot_oracle(&spec, &plan, r)).collect();

    // --- exact strategies must match the oracle on every clean epoch ----------------
    let mut exact_runs: Vec<(&str, SnapshotRun)> = Vec::new();
    let mut mint = MintViews::new(spec);
    exact_runs.push(("MINT", drive_snapshot(cell, &mut mint)));
    exact_runs.push(("TAG", drive_snapshot(cell, &mut TagTopK::new(spec))));
    exact_runs.push(("centralized", drive_snapshot(cell, &mut CentralizedCollection::new(spec))));

    for (who, run) in &exact_runs {
        violations.extend(run.ledger_violations.iter().map(|v| format!("{who}: {v}")));
        for (e, result) in run.results.iter().enumerate() {
            violations.extend(
                check_well_formed(result, &spec, &group_keys)
                    .into_iter()
                    .map(|v| format!("{who} epoch {e}: {v}")),
            );
            if run.clean_epochs[e] {
                violations.extend(
                    check_matches_oracle(who, result, &oracles[e])
                        .into_iter()
                        .map(|v| format!("epoch {e}: {v}")),
                );
            }
        }
    }

    // --- determinism: the same cell must replay bit-for-bit -------------------------
    let replay = drive_snapshot(cell, &mut MintViews::new(spec));
    let first = &exact_runs[0].1;
    if replay.results != first.results || replay.totals != first.totals {
        violations.push("MINT replay diverged: the cell is not deterministic".to_string());
    }

    // --- the inexact strategies still owe structural sanity -------------------------
    let naive_run = drive_snapshot(cell, &mut NaiveLocalPrune::new(spec));
    violations.extend(naive_run.ledger_violations.iter().map(|v| format!("naive: {v}")));
    for (e, result) in naive_run.results.iter().enumerate() {
        violations.extend(
            check_well_formed(result, &spec, &group_keys)
                .into_iter()
                .map(|v| format!("naive epoch {e}: {v}")),
        );
    }

    // FILA answers a different query (Top-K *nodes*); on clean epochs of lossless cells
    // its membership must be exact, elsewhere it owes the structural floor.
    let fila_spec = SnapshotSpec::new(spec.k, AggFunc::Max, ValueDomain::percentage());
    let node_keys: BTreeSet<u64> = d.node_ids().iter().map(|&n| u64::from(n)).collect();
    let fila_run = drive_snapshot(cell, &mut FilaMonitor::new(fila_spec));
    violations.extend(fila_run.ledger_violations.iter().map(|v| format!("FILA: {v}")));
    for (e, result) in fila_run.results.iter().enumerate() {
        violations.extend(
            check_well_formed(result, &fila_spec, &node_keys)
                .into_iter()
                .map(|v| format!("FILA epoch {e}: {v}")),
        );
        if cell.fault.is_lossless() {
            let mut ours = result.keys();
            ours.sort_unstable();
            let oracle = node_membership_oracle(&plan, &reference[e], fila_spec.k);
            if ours != oracle {
                violations
                    .push(format!("FILA epoch {e}: membership {ours:?} != oracle {oracle:?}"));
            }
        }
    }

    // --- cost orderings the paper predicts, on healthy networks ---------------------
    if cell.fault.is_lossless() {
        let mint_run = &exact_runs[0].1;
        let tag_run = &exact_runs[1].1;
        let central_run = &exact_runs[2].1;
        if mint_run.update_tuples > tag_run.update_tuples {
            violations.push(format!(
                "cost: MINT view tuples {} exceed TAG's {}",
                mint_run.update_tuples, tag_run.update_tuples
            ));
        }
        if tag_run.totals.bytes > central_run.totals.bytes {
            violations.push(format!(
                "cost: TAG bytes {} exceed centralized {}",
                tag_run.totals.bytes, central_run.totals.bytes
            ));
        }
        // MINT beating raw collection outright is only predicted for the clustered,
        // temporally correlated regime the paper's demo runs in; on uncorrelated
        // workloads the per-epoch probes are the documented price of exactness.
        if cell.topology == TopologyKind::ClusteredRooms
            && cell.workload == WorkloadProfile::RoomCorrelated
            && mint_run.totals.bytes > central_run.totals.bytes
        {
            violations.push(format!(
                "cost: MINT bytes {} exceed centralized {} on a clustered correlated cell",
                mint_run.totals.bytes, central_run.totals.bytes
            ));
        }
    }

    CellOutcome { label, violations }
}

/// Runs every historic algorithm through the cell: the window is buffered fault-free
/// (sensing is local), then the one-shot query executes on the faulted network at the
/// last window epoch.
pub fn run_historic_cell(cell: &ScenarioCell) -> CellOutcome {
    let label = cell.label();
    let mut violations = Vec::new();
    let d = cell.deployment();
    let plan = cell.fault_plan(&d);
    let spec = cell.historic_spec();

    let data = HistoricDataset::collect(&mut cell.workload(&d), cell.window);
    let query_epoch = *data.epochs().last().expect("non-empty window");
    let participants = participating_nodes(&plan, &d, query_epoch);
    let oracle = data.exact_reference_over(&spec, &participants);
    let epoch_keys: BTreeSet<u64> = data.epochs().iter().copied().collect();
    let historic_as_snapshot_spec =
        SnapshotSpec::new(spec.k, AggFunc::Avg, ValueDomain::percentage());

    let run = |who: &str, algo: &mut dyn HistoricAlgorithm, violations: &mut Vec<String>| -> u64 {
        let mut net = cell.network(&d);
        net.begin_epoch(query_epoch);
        let mut data = data.clone();
        let result = algo.execute(&mut net, &mut data);
        let metrics = net.metrics();
        violations.extend(check_ledger(metrics).into_iter().map(|v| format!("{who}: {v}")));
        violations.extend(
            check_well_formed(&result, &historic_as_snapshot_spec, &epoch_keys)
                .into_iter()
                .map(|v| format!("{who}: {v}")),
        );
        if metrics.totals().dropped_messages == 0 {
            violations.extend(check_matches_oracle(who, &result, &oracle));
        }
        metrics.totals().bytes
    };

    let tja_bytes = run("TJA", &mut Tja::new(spec), &mut violations);
    let tput_bytes = run("TPUT", &mut Tput::new(spec), &mut violations);
    let central_bytes = run("centralized-windows", &mut CentralizedHistoric::new(spec), &mut violations);

    // The horizontally fragmented variant answers a *group* ranking over the windows;
    // check it against the participating-node group-window averages.
    {
        let mut net = cell.network(&d);
        net.begin_epoch(query_epoch);
        let mut local_data = data.clone();
        let snap_spec = cell.snapshot_spec();
        let result = LocalAggregateHistoric::new(snap_spec).execute(&mut net, &mut local_data);
        let metrics = net.metrics();
        violations
            .extend(check_ledger(metrics).into_iter().map(|v| format!("local-aggregate: {v}")));
        let group_keys: BTreeSet<u64> = d.group_members().keys().map(|&g| u64::from(g)).collect();
        violations.extend(
            check_well_formed(&result, &snap_spec, &group_keys)
                .into_iter()
                .map(|v| format!("local-aggregate: {v}")),
        );
        if metrics.totals().dropped_messages == 0 {
            let expected = group_window_oracle(&d, &mut data.clone(), &participants, snap_spec.k);
            violations.extend(check_matches_oracle("local-aggregate", &result, &expected));
        }
    }

    // Hierarchical TJA must not cost more bytes than flat TPUT on a healthy network.
    // Beating raw window collection outright is only predicted when epochs are
    // interesting network-wide (threshold joins need the local top-k lists to
    // overlap); the drifting hot-spot workload deliberately breaks that, so it makes
    // no claim there.  Linear chains make no claim either: a maximum-depth chain has
    // no sibling subtrees for the hierarchical join to exploit, yet every extra TJA
    // phase pays per-hop frame overhead (preamble + header per relayed frame), so on
    // the matrix's short windows the overhead can outweigh the pruned payload — the
    // chain regime's byte claim lives in the long-window E6/E7 sweeps.  (TPUT itself
    // only wins on long, correlated windows, so the short matrix windows assert
    // nothing about TPUT vs centralized.)
    if cell.fault.is_lossless() {
        if tja_bytes > tput_bytes {
            violations.push(format!("cost: TJA bytes {tja_bytes} exceed TPUT {tput_bytes}"));
        }
        if cell.workload != WorkloadProfile::DriftingHotSpot
            && cell.topology != TopologyKind::LinearChain
            && tja_bytes >= central_bytes
        {
            violations.push(format!(
                "cost: TJA bytes {tja_bytes} not below centralized windows {central_bytes}"
            ));
        }
    }

    CellOutcome { label, violations }
}

/// The participating-node group-window-average oracle for the horizontally fragmented
/// historic strategy.
fn group_window_oracle(
    d: &kspot_net::Deployment,
    data: &mut HistoricDataset,
    participants: &[kspot_net::NodeId],
    k: usize,
) -> TopKResult {
    use kspot_algos::RankedItem;
    use std::collections::BTreeMap;
    let mut per_group: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    for &node in participants {
        let vals: Vec<f64> = data.window_mut(node).iter().map(|(_, v)| v).collect();
        per_group.entry(u64::from(d.group_of(node))).or_default().extend(vals);
    }
    let items = per_group
        .into_iter()
        .map(|(g, vals)| RankedItem::new(g, vals.iter().sum::<f64>() / vals.len() as f64))
        .collect();
    let mut result = TopKResult::new(0, items);
    result.items.truncate(k);
    result
}
