//! # kspot-testkit — the scenario-matrix differential-testing harness
//!
//! The paper's central claim is that MINT and TJA answer Top-K queries *exactly* while
//! pruning most of the traffic.  This crate turns that claim into a systematically
//! enumerated test matrix instead of a couple of hand-picked seeds:
//!
//! * [`scenario`] — deterministic scenario cells: topology families (grid / uniform /
//!   clustered rooms / linear chain) × workload families (room-correlated /
//!   independent / drifting hot-spot) × fault profiles (lossless / lossy links / node
//!   death / duty cycling) × a K/N sweep, all seeded per the [`kspot_net::rng`]
//!   convention;
//! * [`oracle`] — exact reference answers scoped to the nodes the fault plan lets
//!   participate (participation is a pure function of the plan, so the oracle never
//!   has to simulate anything);
//! * [`invariants`] — the checkers: ledger conservation across [`kspot_net::metrics`],
//!   per-query attribution conservation (scope and scope×phase axes, incl. merged
//!   report frames), structural well-formedness of every answer, and rank-for-rank
//!   oracle agreement;
//! * [`runner`] — drives every snapshot algorithm (MINT, TAG, centralized, naive,
//!   FILA) and every historic algorithm (TJA, TPUT, centralized windows,
//!   local-aggregate) through a cell and collects violations.
//!
//! Run the full matrix with `cargo test -p kspot-testkit`; the `smoke` feature
//! (`--features smoke`) shrinks it to a PR-sized subset.  Lossy and death cells are
//! *checked* against documented degraded-semantics invariants (exactness scoped to
//! participating nodes and delivered data), never skipped — see
//! `docs/adr/ADR-002-testkit-and-fault-injection.md` for the fault model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod invariants;
pub mod oracle;
pub mod runner;
pub mod scenario;

pub use invariants::{check_ledger, check_scope_attribution, check_storage_attribution};
pub use runner::{run_historic_cell, run_snapshot_cell, CellOutcome};
pub use scenario::{matrix, FaultProfile, ScenarioCell, TopologyKind, WorkloadProfile};
