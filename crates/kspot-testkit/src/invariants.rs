//! Invariant checkers applied to every cell of the scenario matrix.
//!
//! Each checker returns a list of human-readable violations (empty = pass) so that one
//! matrix run can report every broken cell at once instead of stopping at the first.

use kspot_algos::{SnapshotSpec, TopKResult};
use kspot_net::{NetworkMetrics, PhaseTotals, StorageTotals};
use std::collections::BTreeSet;

fn feq(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-6 * scale
}

/// Ledger conservation: the run's totals must equal the sum of the per-node charges,
/// the sum of the per-phase totals and the sum of the per-epoch totals — no traffic or
/// energy may appear or vanish, including on the loss/death/retransmission paths.
pub fn check_ledger(metrics: &NetworkMetrics) -> Vec<String> {
    let mut violations = Vec::new();
    let totals = metrics.totals();

    // Per-node sums (the sink transmits control traffic but its energy is not part of
    // the network totals).
    let mut tx_messages = metrics.sink().tx_messages;
    let mut tx_bytes = metrics.sink().tx_bytes;
    let mut tuples = metrics.sink().tuples_sent;
    let mut dropped = metrics.sink().dropped_messages;
    let mut energy = 0.0;
    for id in 1..=metrics.num_nodes() as u32 {
        let c = metrics.node(id);
        tx_messages += c.tx_messages;
        tx_bytes += c.tx_bytes;
        tuples += c.tuples_sent;
        dropped += c.dropped_messages;
        energy += c.energy_uj;
    }
    if tx_messages != totals.messages {
        violations.push(format!(
            "node-ledger messages {tx_messages} != totals {}",
            totals.messages
        ));
    }
    if tx_bytes != totals.bytes {
        violations.push(format!("node-ledger bytes {tx_bytes} != totals {}", totals.bytes));
    }
    if tuples != totals.tuples {
        violations.push(format!("node-ledger tuples {tuples} != totals {}", totals.tuples));
    }
    if dropped != totals.dropped_messages {
        violations.push(format!(
            "node-ledger drops {dropped} != totals {}",
            totals.dropped_messages
        ));
    }
    if !feq(energy, totals.energy_uj) {
        violations.push(format!(
            "node-ledger energy {energy} µJ != totals {} µJ",
            totals.energy_uj
        ));
    }

    // `check_energy`: node-local energy (sensing, CPU, idle listening) is booked per
    // epoch and in the totals but has no phase, so the per-phase axis only bounds the
    // energy from below while the per-epoch axis must match it exactly.
    let sum_axis =
        |name: &str, parts: Vec<PhaseTotals>, check_energy: bool, violations: &mut Vec<String>| {
            let mut sum = PhaseTotals::default();
            for p in parts {
                sum.messages += p.messages;
                sum.bytes += p.bytes;
                sum.tuples += p.tuples;
                sum.retransmissions += p.retransmissions;
                sum.dropped_messages += p.dropped_messages;
                sum.energy_uj += p.energy_uj;
            }
            let energy_ok = if check_energy {
                feq(sum.energy_uj, totals.energy_uj)
            } else {
                sum.energy_uj <= totals.energy_uj * (1.0 + 1e-9) + 1e-6
            };
            if sum.messages != totals.messages
                || sum.bytes != totals.bytes
                || sum.tuples != totals.tuples
                || sum.retransmissions != totals.retransmissions
                || sum.dropped_messages != totals.dropped_messages
                || !energy_ok
            {
                violations.push(format!("{name} ledger {sum:?} != totals {totals:?}"));
            }
        };
    sum_axis("per-phase", metrics.phases().map(|(_, t)| t).collect(), false, &mut violations);
    sum_axis("per-epoch", metrics.epochs().map(|(_, t)| t).collect(), true, &mut violations);

    violations
}

/// Attribution conservation across the query-scope axis (ADR-004):
///
/// * each scope's scope×phase breakdown must partition that scope's own ledger —
///   bytes, tuples, messages, retransmissions and drops sum exactly, while energy is
///   only bounded from below (node-local energy is booked to the scope without a
///   phase);
/// * summed scoped bytes/tuples/energy must never exceed the global ledger, and when
///   `all_traffic_scoped` is set (every transmission ran under an installed scope, as
///   in the multi-query engine) scoped bytes and tuples must decompose the global
///   ledger *exactly* — this is the law that makes per-query charging trustworthy
///   even when one merged frame carries many sessions' payloads.
///
/// Scoped *message* sums are deliberately not compared against the global count:
/// under frame batching a scope's messages count the frames its payload rode on, and
/// a shared frame is counted once per rider (see `kspot_net::schedule`).
pub fn check_scope_attribution(metrics: &NetworkMetrics, all_traffic_scoped: bool) -> Vec<String> {
    let mut violations = Vec::new();
    let totals = metrics.totals();
    let mut scoped = PhaseTotals::default();
    for (scope, scope_totals) in metrics.scopes() {
        scoped.bytes += scope_totals.bytes;
        scoped.tuples += scope_totals.tuples;
        scoped.energy_uj += scope_totals.energy_uj;

        let mut phased = PhaseTotals::default();
        for (_, t) in metrics.scope_phases(scope) {
            phased.messages += t.messages;
            phased.bytes += t.bytes;
            phased.tuples += t.tuples;
            phased.retransmissions += t.retransmissions;
            phased.dropped_messages += t.dropped_messages;
            phased.energy_uj += t.energy_uj;
        }
        if phased.messages != scope_totals.messages
            || phased.bytes != scope_totals.bytes
            || phased.tuples != scope_totals.tuples
            || phased.retransmissions != scope_totals.retransmissions
            || phased.dropped_messages != scope_totals.dropped_messages
        {
            violations.push(format!(
                "scope {scope}: phase breakdown {phased:?} does not partition {scope_totals:?}"
            ));
        }
        if phased.energy_uj > scope_totals.energy_uj * (1.0 + 1e-9) + 1e-6 {
            violations.push(format!(
                "scope {scope}: phased energy {} µJ exceeds the scope's {} µJ",
                phased.energy_uj, scope_totals.energy_uj
            ));
        }
    }
    if scoped.bytes > totals.bytes || scoped.tuples > totals.tuples {
        violations.push(format!(
            "scoped bytes/tuples {}/{} exceed the ledger totals {}/{}",
            scoped.bytes, scoped.tuples, totals.bytes, totals.tuples
        ));
    }
    if scoped.energy_uj > totals.energy_uj * (1.0 + 1e-9) + 1e-6 {
        violations.push(format!(
            "scoped energy {} µJ exceeds the ledger total {} µJ",
            scoped.energy_uj, totals.energy_uj
        ));
    }
    if all_traffic_scoped && (scoped.bytes != totals.bytes || scoped.tuples != totals.tuples) {
        violations.push(format!(
            "all traffic is scoped, yet scoped bytes/tuples {}/{} != ledger totals {}/{}",
            scoped.bytes, scoped.tuples, totals.bytes, totals.tuples
        ));
    }
    violations
}

/// Attribution conservation across the **storage** axis (ADR-009), the sibling of
/// [`check_scope_attribution`] for flash page I/O:
///
/// * per-node storage counters must sum exactly to [`NetworkMetrics::storage_totals`]
///   — no page write or read may appear or vanish, including checkpoint and restore
///   traffic;
/// * summed per-scope storage must never exceed the totals (unscoped maintenance
///   writes are legal, phantom scoped I/O is not);
/// * flash energy is part of the run's energy ledger, so the storage energy must be
///   bounded by the global energy total.
pub fn check_storage_attribution(metrics: &NetworkMetrics) -> Vec<String> {
    let mut violations = Vec::new();
    let totals = metrics.storage_totals();

    let mut per_node = StorageTotals::default();
    for id in 1..=metrics.num_nodes() as u32 {
        let s = metrics.node_storage(id);
        per_node.pages_written += s.pages_written;
        per_node.pages_read += s.pages_read;
        per_node.bytes_written += s.bytes_written;
        per_node.energy_uj += s.energy_uj;
    }
    if per_node.pages_written != totals.pages_written
        || per_node.pages_read != totals.pages_read
        || per_node.bytes_written != totals.bytes_written
    {
        violations.push(format!(
            "per-node storage ledger {per_node:?} does not partition the totals {totals:?}"
        ));
    }
    if !feq(per_node.energy_uj, totals.energy_uj) {
        violations.push(format!(
            "per-node flash energy {} µJ != storage totals {} µJ",
            per_node.energy_uj, totals.energy_uj
        ));
    }

    let mut scoped = StorageTotals::default();
    for (_, s) in metrics.storage_scopes() {
        scoped.pages_written += s.pages_written;
        scoped.pages_read += s.pages_read;
        scoped.bytes_written += s.bytes_written;
        scoped.energy_uj += s.energy_uj;
    }
    if scoped.pages_written > totals.pages_written
        || scoped.pages_read > totals.pages_read
        || scoped.bytes_written > totals.bytes_written
    {
        violations.push(format!(
            "scoped storage {scoped:?} exceeds the storage totals {totals:?}"
        ));
    }
    if scoped.energy_uj > totals.energy_uj * (1.0 + 1e-9) + 1e-6 {
        violations.push(format!(
            "scoped flash energy {} µJ exceeds the storage total {} µJ",
            scoped.energy_uj, totals.energy_uj
        ));
    }
    if totals.energy_uj > metrics.totals().energy_uj * (1.0 + 1e-9) + 1e-6 {
        violations.push(format!(
            "flash energy {} µJ exceeds the run's energy ledger {} µJ",
            totals.energy_uj,
            metrics.totals().energy_uj
        ));
    }
    violations
}

/// Structural sanity of a ranked answer: at most K items, distinct keys drawn from the
/// legal key space, values finite, inside the domain and sorted best-first.  This is
/// the unconditional floor every answer must meet, including degraded (lossy) ones.
pub fn check_well_formed(
    result: &TopKResult,
    spec: &SnapshotSpec,
    legal_keys: &BTreeSet<u64>,
) -> Vec<String> {
    let mut violations = Vec::new();
    if result.items.len() > spec.k {
        violations.push(format!("answer has {} items, K = {}", result.items.len(), spec.k));
    }
    let mut seen = BTreeSet::new();
    for pair in result.items.windows(2) {
        if pair[0].value < pair[1].value {
            violations.push(format!("answer not sorted best-first: {result}"));
            break;
        }
    }
    for item in &result.items {
        if !seen.insert(item.key) {
            violations.push(format!("duplicate key {} in {result}", item.key));
        }
        if !legal_keys.contains(&item.key) {
            violations.push(format!("key {} is outside the legal key space", item.key));
        }
        if !item.value.is_finite()
            || item.value < spec.domain.min - 1e-9
            || item.value > spec.domain.max + 1e-9
        {
            violations.push(format!("value {} escapes the domain in {result}", item.value));
        }
    }
    violations
}

/// Rank-for-rank agreement with the oracle, with values matching to tolerance.
pub fn check_matches_oracle(
    who: &str,
    result: &TopKResult,
    oracle: &TopKResult,
) -> Vec<String> {
    let mut violations = Vec::new();
    if !result.same_ranking(oracle) {
        violations.push(format!("{who}: ranking {result} != oracle {oracle}"));
    } else if !result.approx_eq(oracle, 1e-6) {
        violations.push(format!("{who}: values {result} drift from oracle {oracle}"));
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspot_algos::RankedItem;
    use kspot_net::types::ValueDomain;
    use kspot_net::{PhaseTag, SINK};
    use kspot_query::AggFunc;

    #[test]
    fn ledger_checker_accepts_a_consistent_run() {
        let mut m = NetworkMetrics::new(3);
        m.record_transmission(2, 1, 0, PhaseTag::Update, 19, 1, 380.0, 285.0);
        m.record_transmission(1, SINK, 1, PhaseTag::Update, 31, 2, 620.0, 465.0);
        m.record_broadcast(SINK, &[1, 2, 3], 1, PhaseTag::Control, 13, 0, 260.0, 195.0);
        m.note_retransmission(1, PhaseTag::Update);
        m.note_drop(1, 1, PhaseTag::Update);
        m.record_local_energy(3, 0, 140.0);
        m.record_unheard_transmission(3, 2, PhaseTag::Probe, 9, 0, 180.0);
        let clean = check_ledger(&m);
        assert!(clean.is_empty(), "public API keeps ledgers consistent: {clean:?}");
    }

    #[test]
    fn empty_ledger_is_trivially_balanced() {
        assert!(check_ledger(&NetworkMetrics::new(4)).is_empty());
    }

    #[test]
    fn scope_attribution_checker_accepts_scoped_and_frame_traffic() {
        use kspot_net::FrameSlice;
        let mut m = NetworkMetrics::new(3);
        m.set_scope(Some(0));
        m.record_transmission(1, 2, 0, PhaseTag::Update, 19, 1, 380.0, 285.0);
        m.set_scope(None);
        // A merged frame carrying both scopes.
        let slices = [
            FrameSlice { scope: Some(0), phase: PhaseTag::Update, share_bytes: 20, tuples: 1 },
            FrameSlice { scope: Some(1), phase: PhaseTag::Update, share_bytes: 14, tuples: 2 },
        ];
        m.record_frame_transmission(2, 1, 0, PhaseTag::Update, 34, &slices, 340.0, 170.0);
        m.note_frame_retransmission(0, PhaseTag::Update, &slices);
        m.record_frame_transmission(2, 1, 0, PhaseTag::Update, 34, &slices, 340.0, 170.0);

        let clean = check_scope_attribution(&m, true);
        assert!(clean.is_empty(), "the public API keeps attribution conserved: {clean:?}");
        assert!(check_ledger(&m).is_empty(), "frame bookings conserve the global ledgers too");
    }

    #[test]
    fn scope_attribution_checker_flags_unscoped_leaks_when_equality_is_required() {
        let mut m = NetworkMetrics::new(3);
        m.record_transmission(1, 2, 0, PhaseTag::Update, 19, 1, 380.0, 285.0);
        assert!(check_scope_attribution(&m, false).is_empty(), "inequality mode tolerates it");
        let strict = check_scope_attribution(&m, true);
        assert_eq!(strict.len(), 1, "unscoped traffic breaks the exact decomposition: {strict:?}");
    }

    #[test]
    fn storage_attribution_checker_accepts_checkpoint_and_restore_traffic() {
        let mut m = NetworkMetrics::new(3);
        // Unscoped maintenance writes (the engine's checkpoint pass)...
        m.record_page_writes(1, 3, 2, 136, 90.0);
        m.record_page_writes(2, 3, 1, 72, 45.0);
        // ...and a scoped restore (an AS OF session reading the image back).
        m.set_scope(Some(4));
        m.record_page_reads(1, 4, 2, 40.0);
        m.record_page_reads(2, 4, 1, 20.0);
        m.set_scope(None);
        let clean = check_storage_attribution(&m);
        assert!(clean.is_empty(), "the public API keeps storage conserved: {clean:?}");
        assert!(check_ledger(&m).is_empty(), "flash energy lands in the run ledgers too");
    }

    #[test]
    fn storage_attribution_is_trivially_conserved_on_a_flashless_run() {
        let mut m = NetworkMetrics::new(3);
        m.record_transmission(2, 1, 0, PhaseTag::Update, 19, 1, 380.0, 285.0);
        assert!(check_storage_attribution(&m).is_empty());
    }

    #[test]
    fn well_formedness_catches_bad_answers() {
        let spec = SnapshotSpec::new(2, AggFunc::Avg, ValueDomain::percentage());
        let legal: BTreeSet<u64> = [0u64, 1, 2, 3].into_iter().collect();

        let good = TopKResult::new(0, vec![RankedItem::new(2, 75.0), RankedItem::new(0, 74.5)]);
        assert!(check_well_formed(&good, &spec, &legal).is_empty());

        let too_many = TopKResult::new(
            0,
            vec![RankedItem::new(2, 75.0), RankedItem::new(0, 74.5), RankedItem::new(1, 41.0)],
        );
        assert!(!check_well_formed(&too_many, &spec, &legal).is_empty());

        let alien_key = TopKResult::new(0, vec![RankedItem::new(9, 75.0)]);
        assert!(!check_well_formed(&alien_key, &spec, &legal).is_empty());

        let out_of_domain = TopKResult::new(0, vec![RankedItem::new(2, 175.0)]);
        assert!(!check_well_formed(&out_of_domain, &spec, &legal).is_empty());
    }

    #[test]
    fn oracle_matcher_flags_rank_and_value_drift() {
        let oracle = TopKResult::new(0, vec![RankedItem::new(2, 75.0), RankedItem::new(0, 74.5)]);
        let same = TopKResult::new(0, vec![RankedItem::new(2, 75.0), RankedItem::new(0, 74.5)]);
        assert!(check_matches_oracle("x", &same, &oracle).is_empty());
        let flipped = TopKResult::new(0, vec![RankedItem::new(0, 76.0), RankedItem::new(2, 75.0)]);
        assert!(!check_matches_oracle("x", &flipped, &oracle).is_empty());
        let drifted = TopKResult::new(0, vec![RankedItem::new(2, 75.1), RankedItem::new(0, 74.5)]);
        assert!(!check_matches_oracle("x", &drifted, &oracle).is_empty());
    }
}
