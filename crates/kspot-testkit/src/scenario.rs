//! Scenario definitions: the cells of the differential-testing matrix.
//!
//! A [`ScenarioCell`] is one fully specified experiment: a topology family, a workload
//! family, a fault profile, a network size, a K, and a master seed.  Everything a cell
//! builds follows the seeding convention of [`kspot_net::rng`]: the single master seed
//! is split into independent topology / workload / substrate streams, so no component's
//! randomness is correlated with another's.
//!
//! [`matrix`] enumerates the full cross product used by `cargo test -p kspot-testkit`;
//! with the `smoke` feature it shrinks to a PR-sized subset.

use kspot_algos::{HistoricSpec, SnapshotSpec};
use kspot_net::rng::{mix_seed, substrate_seed, topology_seed, workload_seed};
use kspot_net::types::ValueDomain;
use kspot_net::{
    Deployment, DutyCycle, FaultPlan, Network, NetworkConfig, RoomModelParams, RoutingTree,
    Workload,
};
use kspot_query::AggFunc;

/// The topology families the matrix covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// A square grid with round-robin group assignment.
    Grid,
    /// Uniform random placement.
    UniformRandom,
    /// Sensors clustered into rooms (the conference regime MINT is designed for).
    ClusteredRooms,
    /// A single line of nodes — maximum routing depth, worst case for relaying.
    LinearChain,
}

impl TopologyKind {
    /// Every topology family.
    pub const ALL: [TopologyKind; 4] = [
        TopologyKind::Grid,
        TopologyKind::UniformRandom,
        TopologyKind::ClusteredRooms,
        TopologyKind::LinearChain,
    ];

    /// Short label for cell ids.
    pub fn label(self) -> &'static str {
        match self {
            TopologyKind::Grid => "grid",
            TopologyKind::UniformRandom => "uniform",
            TopologyKind::ClusteredRooms => "clustered",
            TopologyKind::LinearChain => "chain",
        }
    }

    /// Builds a deployment of roughly `nodes` sensors in `groups` groups.  The grid
    /// family rounds the count up to the next full square (grids only come in
    /// side × side sizes); cell labels report the actual deployed count.
    pub fn build(self, nodes: usize, groups: usize, seed: u64) -> Deployment {
        match self {
            TopologyKind::Grid => {
                let side = (nodes as f64).sqrt().ceil() as usize;
                Deployment::grid(side.max(2), 10.0, Some(groups))
            }
            TopologyKind::UniformRandom => {
                Deployment::uniform_random(nodes, 100.0, 100.0, groups, seed)
            }
            TopologyKind::ClusteredRooms => {
                Deployment::clustered_rooms(groups, (nodes / groups).max(1), 20.0, seed)
            }
            TopologyKind::LinearChain => Deployment::linear_chain(nodes, 10.0, Some(groups)),
        }
    }
}

/// The workload families the matrix covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadProfile {
    /// Room-correlated drifting sound levels (the conference demo model).
    RoomCorrelated,
    /// Independent uniform redraw every epoch — no temporal correlation at all.
    IndependentUniform,
    /// A hot group that hops on a clock — adversarial for installed thresholds.
    DriftingHotSpot,
}

impl WorkloadProfile {
    /// Every workload family.
    pub const ALL: [WorkloadProfile; 3] = [
        WorkloadProfile::RoomCorrelated,
        WorkloadProfile::IndependentUniform,
        WorkloadProfile::DriftingHotSpot,
    ];

    /// Short label for cell ids.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadProfile::RoomCorrelated => "room",
            WorkloadProfile::IndependentUniform => "iid",
            WorkloadProfile::DriftingHotSpot => "hotspot",
        }
    }

    /// Builds the workload over `deployment`, seeded with a *workload* seed.
    pub fn build(self, deployment: &Deployment, seed: u64) -> Workload {
        let domain = ValueDomain::percentage();
        match self {
            WorkloadProfile::RoomCorrelated => Workload::room_correlated(
                deployment,
                domain,
                RoomModelParams { drift_sigma: 2.0, sensor_noise_sigma: 1.0 },
                seed,
            ),
            WorkloadProfile::IndependentUniform => Workload::uniform_iid(deployment, domain, seed),
            WorkloadProfile::DriftingHotSpot => {
                Workload::drifting_hotspot(deployment, domain, 3, 1.0, seed)
            }
        }
    }
}

/// The fault profiles the matrix covers (see `kspot_net::fault` for the semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultProfile {
    /// Healthy network: the regime of the paper's exactness claims.
    Lossless,
    /// 25 % per-attempt link loss recovered by up to 6 ARQ retransmissions.
    LossyLinks,
    /// An internal node dies halfway through the run; its subtree reroutes.
    NodeDeath,
    /// Staggered 3-out-of-4 duty cycling: every epoch ~a quarter of the nodes sleep.
    DutyCycled,
}

impl FaultProfile {
    /// Every fault profile.
    pub const ALL: [FaultProfile; 4] = [
        FaultProfile::Lossless,
        FaultProfile::LossyLinks,
        FaultProfile::NodeDeath,
        FaultProfile::DutyCycled,
    ];

    /// Short label for cell ids.
    pub fn label(self) -> &'static str {
        match self {
            FaultProfile::Lossless => "lossless",
            FaultProfile::LossyLinks => "lossy",
            FaultProfile::NodeDeath => "death",
            FaultProfile::DutyCycled => "dutycycle",
        }
    }

    /// True when the profile injects no faults (full-exactness invariants apply).
    pub fn is_lossless(self) -> bool {
        self == FaultProfile::Lossless
    }

    /// Builds the fault plan for a deployment and a run of `epochs` epochs.
    pub fn plan(self, deployment: &Deployment, epochs: usize) -> FaultPlan {
        match self {
            FaultProfile::Lossless => FaultPlan::none(),
            FaultProfile::LossyLinks => FaultPlan::none().with_link_loss(0.25).with_retransmits(6),
            FaultProfile::NodeDeath => {
                // Kill an internal node so the rerouting path is exercised; fall back to
                // node 1 on degenerate trees.
                let tree = RoutingTree::build(deployment);
                let victim = deployment
                    .node_ids()
                    .into_iter()
                    .find(|&id| !tree.is_leaf(id))
                    .unwrap_or(1);
                FaultPlan::none().with_node_death(victim, (epochs / 2) as u64)
            }
            FaultProfile::DutyCycled => FaultPlan::none().with_duty_cycle(DutyCycle::new(4, 3)),
        }
    }
}

/// One cell of the scenario matrix: everything needed to build the deployment, the
/// workload, the faulted network and the query specs, reproducibly.
#[derive(Debug, Clone)]
pub struct ScenarioCell {
    /// Topology family.
    pub topology: TopologyKind,
    /// Workload family.
    pub workload: WorkloadProfile,
    /// Fault profile.
    pub fault: FaultProfile,
    /// Target number of sensor nodes (the grid family rounds up to a full square;
    /// [`Self::label`] reports the deployed count).
    pub nodes: usize,
    /// Number of groups (rooms).
    pub groups: usize,
    /// The K of the Top-K query.
    pub k: usize,
    /// Epochs a continuous snapshot query runs for.
    pub epochs: usize,
    /// Sliding-window length for historic queries.
    pub window: usize,
    /// Master seed; component seeds are derived per the `kspot_net::rng` convention.
    pub master_seed: u64,
}

impl ScenarioCell {
    /// Human-readable cell identifier for failure messages.  `n` is the *deployed*
    /// node count (the grid family rounds the requested count up to a full square).
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{} n={} g={} k={} seed={}",
            self.topology.label(),
            self.workload.label(),
            self.fault.label(),
            self.deployment().num_nodes(),
            self.groups,
            self.k,
            self.master_seed,
        )
    }

    /// Builds the deployment (topology-seed stream).
    pub fn deployment(&self) -> Deployment {
        self.topology.build(self.nodes, self.groups, topology_seed(self.master_seed))
    }

    /// Builds a fresh workload (workload-seed stream).
    pub fn workload(&self, deployment: &Deployment) -> Workload {
        self.workload.build(deployment, workload_seed(self.master_seed))
    }

    /// The cell's fault plan.
    pub fn fault_plan(&self, deployment: &Deployment) -> FaultPlan {
        self.fault.plan(deployment, self.epochs)
    }

    /// Deploys a fresh faulted network (substrate-seed stream).  Batteries are huge so
    /// that the *scheduled* fault plan, not organic depletion, decides participation —
    /// which is what makes the oracle's participation prediction exact.
    pub fn network(&self, deployment: &Deployment) -> Network {
        let config = NetworkConfig::mica2()
            .with_battery_uj(1.0e15)
            .with_seed(substrate_seed(self.master_seed))
            .with_faults(self.fault_plan(deployment));
        Network::new(deployment.clone(), config)
    }

    /// The snapshot Top-K spec the cell runs (AVG over the percentage domain).
    pub fn snapshot_spec(&self) -> SnapshotSpec {
        SnapshotSpec::new(self.k, AggFunc::Avg, ValueDomain::percentage())
    }

    /// The historic Top-K spec the cell runs.
    pub fn historic_spec(&self) -> HistoricSpec {
        HistoricSpec::new(
            self.k.min(self.window),
            AggFunc::Avg,
            ValueDomain::percentage(),
            self.window,
        )
    }
}

/// `(nodes, groups, k)` combinations swept per (topology, workload, fault) triple.
#[cfg(not(feature = "smoke"))]
const SWEEP: &[(usize, usize, usize)] = &[(12, 4, 1), (24, 6, 3)];
#[cfg(feature = "smoke")]
const SWEEP: &[(usize, usize, usize)] = &[(12, 4, 2)];

#[cfg(not(feature = "smoke"))]
const TOPOLOGIES: &[TopologyKind] = &TopologyKind::ALL;
#[cfg(feature = "smoke")]
const TOPOLOGIES: &[TopologyKind] = &[TopologyKind::ClusteredRooms, TopologyKind::LinearChain];

#[cfg(not(feature = "smoke"))]
const WORKLOADS: &[WorkloadProfile] = &WorkloadProfile::ALL;
#[cfg(feature = "smoke")]
const WORKLOADS: &[WorkloadProfile] =
    &[WorkloadProfile::RoomCorrelated, WorkloadProfile::DriftingHotSpot];

#[cfg(not(feature = "smoke"))]
const FAULTS: &[FaultProfile] = &FaultProfile::ALL;
#[cfg(feature = "smoke")]
const FAULTS: &[FaultProfile] =
    &[FaultProfile::Lossless, FaultProfile::LossyLinks, FaultProfile::NodeDeath];

/// Enumerates the scenario matrix: topologies × workloads × fault profiles × a K/N
/// sweep.  The full matrix (default features) has 4 × 3 × 4 × 2 = 96 cells; the `smoke`
/// feature reduces it to 2 × 2 × 3 × 1 = 12 cells for fast PR gating.
pub fn matrix() -> Vec<ScenarioCell> {
    let mut cells = Vec::new();
    for (ti, &topology) in TOPOLOGIES.iter().enumerate() {
        for (wi, &workload) in WORKLOADS.iter().enumerate() {
            for (fi, &fault) in FAULTS.iter().enumerate() {
                for (ci, &(nodes, groups, k)) in SWEEP.iter().enumerate() {
                    cells.push(ScenarioCell {
                        topology,
                        workload,
                        fault,
                        nodes,
                        groups,
                        k,
                        epochs: 12,
                        window: 16,
                        master_seed: mix_seed(
                            0xC311,
                            &[ti as u64, wi as u64, fi as u64, ci as u64],
                        ),
                    });
                }
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cell_builds_its_components() {
        for cell in matrix() {
            let d = cell.deployment();
            assert!(d.num_nodes() >= cell.groups, "{}", cell.label());
            assert_eq!(d.num_groups(), cell.groups.min(d.num_nodes()), "{}", cell.label());
            let mut w = cell.workload(&d);
            assert_eq!(w.next_epoch().len(), d.num_nodes());
            let net = cell.network(&d);
            assert_eq!(net.num_nodes(), d.num_nodes());
            assert!(cell.k <= cell.groups);
        }
    }

    #[test]
    fn component_seeds_follow_the_convention() {
        let cell = &matrix()[0];
        // The same master seed yields identical deployments and workload streams …
        let d1 = cell.deployment();
        let d2 = cell.deployment();
        let a: Vec<f64> = cell.workload(&d1).next_epoch().iter().map(|r| r.value).collect();
        let b: Vec<f64> = cell.workload(&d2).next_epoch().iter().map(|r| r.value).collect();
        assert_eq!(a, b);
        // … and the workload seed differs from the topology seed (the bug this PR
        // removes: examples passing the raw master seed to both components).
        assert_ne!(topology_seed(cell.master_seed), workload_seed(cell.master_seed));
    }

    #[test]
    fn node_death_profile_picks_an_internal_victim() {
        let d = Deployment::linear_chain(8, 10.0, Some(4));
        let plan = FaultProfile::NodeDeath.plan(&d, 12);
        let (&victim, &at) = plan.node_deaths.iter().next().unwrap();
        assert_eq!(at, 6);
        let tree = RoutingTree::build(&d);
        assert!(!tree.is_leaf(victim), "the victim must have a subtree to sever");
    }
}
