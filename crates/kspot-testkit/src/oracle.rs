//! Exact reference answers, scoped to the nodes a fault plan lets participate.
//!
//! Participation is a pure function of `(FaultPlan, node, epoch)` — scheduled deaths
//! and duty cycles are deterministic, and the testkit gives nodes effectively infinite
//! batteries — so the oracle can predict exactly which readings a fault-free algorithm
//! run *could* have seen without simulating anything.

use kspot_algos::snapshot::exact_reference;
use kspot_algos::{SnapshotSpec, TopKResult};
use kspot_net::types::cmp_value;
use kspot_net::{Deployment, Epoch, FaultPlan, NodeId, Reading};

/// The sensor nodes able to take part in `epoch` under `plan`, ascending.
pub fn participating_nodes(plan: &FaultPlan, deployment: &Deployment, epoch: Epoch) -> Vec<NodeId> {
    deployment.node_ids().into_iter().filter(|&id| plan.participates(id, epoch)).collect()
}

/// The epoch's readings restricted to participating nodes.
pub fn participating_readings(plan: &FaultPlan, readings: &[Reading]) -> Vec<Reading> {
    readings.iter().filter(|r| plan.participates(r.node, r.epoch)).copied().collect()
}

/// Ground-truth snapshot ranking over the readings of participating nodes — what an
/// exact algorithm must report in an epoch with no post-retry drops.
pub fn snapshot_oracle(spec: &SnapshotSpec, plan: &FaultPlan, readings: &[Reading]) -> TopKResult {
    exact_reference(spec, &participating_readings(plan, readings))
}

/// Ground-truth Top-K *node* membership (FILA's query): the keys of the `k` highest
/// participating readings, sorted ascending for set comparison.
pub fn node_membership_oracle(plan: &FaultPlan, readings: &[Reading], k: usize) -> Vec<u64> {
    let mut ranked: Vec<(u64, f64)> = participating_readings(plan, readings)
        .iter()
        .map(|r| (u64::from(r.node), r.value))
        .collect();
    ranked.sort_by(|a, b| cmp_value(b.1, a.1).then(a.0.cmp(&b.0)));
    let mut keys: Vec<u64> = ranked.into_iter().take(k).map(|(n, _)| n).collect();
    keys.sort_unstable();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspot_net::types::ValueDomain;
    use kspot_net::Workload;
    use kspot_query::AggFunc;

    #[test]
    fn oracle_excludes_dead_nodes() {
        let d = Deployment::figure1();
        let readings = Workload::figure1(&d).next_epoch();
        let spec = SnapshotSpec::new(4, AggFunc::Avg, ValueDomain::percentage());

        let healthy = snapshot_oracle(&spec, &FaultPlan::none(), &readings);
        assert_eq!(healthy.keys(), vec![2, 0, 3, 1], "C > A > D > B");

        // Killing s9 (the 39-value sensor of room D) lifts room D's average to 76.5 —
        // exactly the biased value the naive strategy reports in Figure 1.
        let plan = FaultPlan::none().with_node_death(9, 0);
        let degraded = snapshot_oracle(&spec, &plan, &readings);
        assert_eq!(degraded.keys(), vec![3, 2, 0, 1], "room D now leads");
        assert!((degraded.items[0].value - 76.5).abs() < 1e-9);
        assert_eq!(participating_nodes(&plan, &d, 0).len(), 8);
    }

    #[test]
    fn node_membership_oracle_ranks_raw_readings() {
        let d = Deployment::figure1();
        let readings = Workload::figure1(&d).next_epoch();
        let top3 = node_membership_oracle(&FaultPlan::none(), &readings, 3);
        assert_eq!(top3, vec![3, 5, 7], "s7 = 78, then the 75s with smallest ids");
    }
}
