//! Property-based tests over the core correctness invariants of the reproduction,
//! driven by randomly drawn testkit scenario cells.
//!
//! The single most important property of the KSpot algorithms is *exactness*: whatever
//! the deployment, the workload, K or the fault profile, MINT and TJA must return the
//! same ranking TAG / a centralized collection would over the data that could be
//! delivered.  Instead of hand-rolling deployments and workloads with pinned seeds
//! (the old `kspot-algos/tests/properties.rs`), the properties draw whole
//! [`ScenarioCell`]s and reuse the matrix runner's invariant checkers, so every random
//! case exercises exactly the semantics the scenario matrix documents.

use kspot_algos::snapshot::{exact_reference, run_continuous};
use kspot_algos::{AggState, MintViews, NaiveLocalPrune, SnapshotSpec};
use kspot_net::types::ValueDomain;
use kspot_query::AggFunc;
use kspot_testkit::scenario::{FaultProfile, ScenarioCell, TopologyKind, WorkloadProfile};
use kspot_testkit::{run_historic_cell, run_snapshot_cell};
use proptest::prelude::*;

fn agg_strategy() -> impl Strategy<Value = AggFunc> {
    prop_oneof![
        Just(AggFunc::Avg),
        Just(AggFunc::Sum),
        Just(AggFunc::Min),
        Just(AggFunc::Max),
        Just(AggFunc::Count),
    ]
}

/// Uniform draw from a slice — built from the `*::ALL` consts so the property tests
/// can never silently fall behind when the scenario matrix grows a variant.
fn choice<T: Copy + 'static>(pool: &'static [T]) -> proptest::strategy::Union<T> {
    proptest::strategy::Union(
        pool.iter()
            .map(|&v| Box::new(Just(v)) as Box<dyn proptest::strategy::Strategy<Value = T>>)
            .collect(),
    )
}

fn topology_strategy() -> impl Strategy<Value = TopologyKind> {
    choice(&TopologyKind::ALL)
}

fn workload_strategy() -> impl Strategy<Value = WorkloadProfile> {
    choice(&WorkloadProfile::ALL)
}

fn fault_strategy() -> impl Strategy<Value = FaultProfile> {
    choice(&FaultProfile::ALL)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Partial-aggregate bounds always enclose the final exact value, no matter how the
    /// contributions are split between "seen" and "missing".
    #[test]
    fn aggregate_bounds_enclose_the_exact_value(
        values in prop::collection::vec(0.0f64..100.0, 1..12),
        split in 0usize..12,
        func in agg_strategy(),
    ) {
        let split = split.min(values.len());
        let (seen, missing) = values.split_at(split);
        let mut state = AggState::empty(func);
        for &v in seen {
            state.add(v);
        }
        let exact = {
            let mut all = AggState::empty(func);
            for &v in &values {
                all.add(v);
            }
            all.partial_value(func).unwrap()
        };
        let domain = ValueDomain::percentage();
        let ub = state.upper_bound(func, missing.len() as u32, domain.max);
        let lb = state.lower_bound(func, missing.len() as u32, domain.min);
        prop_assert!(lb <= exact + 1e-9, "{func}: lower bound {lb} above exact {exact}");
        prop_assert!(ub >= exact - 1e-9, "{func}: upper bound {ub} below exact {exact}");
    }

    /// Every randomly drawn snapshot cell — any topology, workload, fault profile, K
    /// and seed — passes the full invariant suite: exact algorithms match the
    /// participation-scoped oracle on clean epochs, ledgers conserve, runs replay
    /// deterministically and the cost orderings hold where predicted.
    #[test]
    fn random_snapshot_cells_uphold_all_invariants(
        topology in topology_strategy(),
        workload in workload_strategy(),
        fault in fault_strategy(),
        groups in 2usize..7,
        per_group in 1usize..4,
        k in 1usize..5,
        seed in 0u64..10_000,
    ) {
        let cell = ScenarioCell {
            topology,
            workload,
            fault,
            nodes: groups * per_group,
            groups,
            k: k.min(groups),
            epochs: 10,
            window: 12,
            master_seed: seed,
        };
        let outcome = run_snapshot_cell(&cell);
        prop_assert!(outcome.passed(), "[{}] {:#?}", outcome.label, outcome.violations);
    }

    /// The same, for the historic algorithm pool (TJA, TPUT, centralized windows,
    /// local-aggregate).
    #[test]
    fn random_historic_cells_uphold_all_invariants(
        topology in topology_strategy(),
        workload in workload_strategy(),
        fault in fault_strategy(),
        groups in 2usize..6,
        per_group in 1usize..4,
        k in 1usize..6,
        seed in 0u64..10_000,
    ) {
        let cell = ScenarioCell {
            topology,
            workload,
            fault,
            nodes: groups * per_group,
            groups,
            k,
            epochs: 8,
            window: 16,
            master_seed: seed,
        };
        let outcome = run_historic_cell(&cell);
        prop_assert!(outcome.passed(), "[{}] {:#?}", outcome.label, outcome.violations);
    }

    /// The naive strategy is never *more* accurate than MINT: whenever naive gets the
    /// ranking right, MINT does too (MINT is always right on healthy networks).
    #[test]
    fn naive_is_never_better_than_mint(
        groups in 2usize..6,
        seed in 0u64..10_000,
    ) {
        let cell = ScenarioCell {
            topology: TopologyKind::ClusteredRooms,
            workload: WorkloadProfile::RoomCorrelated,
            fault: FaultProfile::Lossless,
            nodes: groups * 3,
            groups,
            k: 1,
            epochs: 8,
            window: 8,
            master_seed: seed,
        };
        let d = cell.deployment();
        let spec = SnapshotSpec::new(1, AggFunc::Avg, ValueDomain::percentage());

        let mut naive_net = cell.network(&d);
        let naive_results = run_continuous(
            &mut NaiveLocalPrune::new(spec),
            &mut naive_net,
            &mut cell.workload(&d),
            cell.epochs,
        );
        let mut mint_net = cell.network(&d);
        let mint_results = run_continuous(
            &mut MintViews::new(spec),
            &mut mint_net,
            &mut cell.workload(&d),
            cell.epochs,
        );

        let mut reference_workload = cell.workload(&d);
        for (naive, mint) in naive_results.iter().zip(mint_results.iter()) {
            let reference = exact_reference(&spec, &reference_workload.next_epoch());
            prop_assert!(mint.same_ranking(&reference));
            let _ = naive; // naive may or may not match; no assertion either way
        }
    }
}
