//! The scenario matrix: every cell is run through every algorithm and checked against
//! the participation-scoped oracle and the ledger/cost invariants.
//!
//! Failures report *all* broken cells at once, with the cell label carrying the exact
//! topology/workload/fault/seed combination needed to reproduce it in isolation.

use kspot_testkit::{matrix, run_historic_cell, run_snapshot_cell, CellOutcome};

fn report(outcomes: Vec<CellOutcome>) {
    let failed: Vec<&CellOutcome> = outcomes.iter().filter(|o| !o.passed()).collect();
    if !failed.is_empty() {
        let mut msg = format!("{} of {} cells violated invariants:\n", failed.len(), outcomes.len());
        for outcome in failed {
            msg.push_str(&format!("\n[{}]\n", outcome.label));
            for v in &outcome.violations {
                msg.push_str(&format!("  - {v}\n"));
            }
        }
        panic!("{msg}");
    }
}

#[test]
fn the_matrix_is_large_enough_to_mean_something() {
    let cells = matrix();
    // The acceptance bar: >= 3 topologies x >= 2 workloads x >= 2 fault profiles x a
    // K/N sweep, >= 48 cells in total (the smoke feature intentionally runs fewer).
    if cfg!(feature = "smoke") {
        assert!(cells.len() >= 12, "smoke matrix shrank below a useful size");
    } else {
        assert!(cells.len() >= 48, "full matrix must enumerate at least 48 cells, got {}", cells.len());
        let topologies: std::collections::BTreeSet<&str> =
            cells.iter().map(|c| c.topology.label()).collect();
        let workloads: std::collections::BTreeSet<&str> =
            cells.iter().map(|c| c.workload.label()).collect();
        let faults: std::collections::BTreeSet<&str> =
            cells.iter().map(|c| c.fault.label()).collect();
        assert!(topologies.len() >= 3, "need >= 3 topology families, got {topologies:?}");
        assert!(workloads.len() >= 2, "need >= 2 workload families, got {workloads:?}");
        assert!(faults.len() >= 2, "need >= 2 fault profiles, got {faults:?}");
    }
}

#[test]
fn snapshot_algorithms_survive_the_whole_matrix() {
    report(matrix().iter().map(run_snapshot_cell).collect());
}

#[test]
fn historic_algorithms_survive_the_whole_matrix() {
    report(matrix().iter().map(run_historic_cell).collect());
}
