#!/usr/bin/env python3
"""Perf-trajectory trend check for BENCH_engine.json (bench-smoke CI job).

Usage: bench_trend_check.py PREVIOUS_JSON CURRENT_JSON

Compares the shared-epoch engine's throughput between the previous merge's
artifact and the fresh one and fails (exit 1) on a >2x regression of
`shared_loop_qps` at batch size 8.  Everything else passes (exit 0), but the
skip paths are **announced**, never silent: each one emits a GitHub Actions
`::warning::` annotation so a trajectory that quietly stopped being checked
(missing artifact, artifact-fetch step broken, schema drift) shows up on the
workflow run instead of looking like a pass:

* no previous artifact (the trajectory starts empty — or the fetch broke),
* either artifact unreadable or in an unknown schema,
* no batch-8 row (smoke-sized PR runs only sweep small batches).

Understands the schema-2/3 merged documents ({"schema": N, "experiments":
[...]}) and the original flat e12 document ({"experiment":
"engine-throughput", ...}).
"""

import json
import sys

REGRESSION_FACTOR = 2.0
BATCH = 8


def warn_skip(reason):
    """Announce a skipped comparison as a CI warning annotation (stdout, where the
    Actions runner picks `::warning::` lines up), then as a plain log line."""
    print(f"::warning title=bench trend check skipped::{reason}")
    print(f"trend check: {reason}, skipping")


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError):
        return None


def engine_throughput_rows(doc):
    """The engine-throughput rows of either artifact schema, or None."""
    if not isinstance(doc, dict):
        return None
    experiments = doc.get("experiments", [doc])
    for experiment in experiments:
        if (
            isinstance(experiment, dict)
            and experiment.get("experiment") == "engine-throughput"
        ):
            rows = experiment.get("rows")
            return rows if isinstance(rows, list) else None
    return None


def shared_qps_at_batch(doc, batch):
    rows = engine_throughput_rows(doc)
    if rows is None:
        return None
    for row in rows:
        if isinstance(row, dict) and row.get("batch") == batch:
            qps = row.get("shared_loop_qps")
            return float(qps) if isinstance(qps, (int, float)) else None
    return None


def main(argv):
    if len(argv) != 3:
        print(f"usage: {argv[0]} PREVIOUS_JSON CURRENT_JSON", file=sys.stderr)
        return 0  # misconfiguration must not block CI
    previous = shared_qps_at_batch(load(argv[1]), BATCH)
    current = shared_qps_at_batch(load(argv[2]), BATCH)
    if previous is None or previous <= 0.0:
        warn_skip(
            f"no prior batch-{BATCH} shared-loop throughput in {argv[1]} to compare "
            "against (first run of the trajectory, or the artifact fetch broke)"
        )
        return 0
    if current is None:
        warn_skip(f"current artifact {argv[2]} has no batch-{BATCH} row (smoke-sized run)")
        return 0
    ratio = previous / current if current > 0.0 else float("inf")
    print(
        f"trend check: shared-loop qps at batch {BATCH}: "
        f"previous {previous:.2f}, current {current:.2f} ({ratio:.2f}x slower)"
    )
    if ratio > REGRESSION_FACTOR:
        print(
            f"trend check: FAIL — shared-loop qps regressed more than "
            f"{REGRESSION_FACTOR}x at batch {BATCH}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
