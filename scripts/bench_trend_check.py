#!/usr/bin/env python3
"""Perf-trajectory trend check for BENCH_engine.json (bench-smoke CI job).

Usage: bench_trend_check.py PREVIOUS_JSON CURRENT_JSON

Two gates, both on the CURRENT artifact's merged document; the first also needs
the previous merge's artifact:

1. **Regression** — fails (exit 1) on a >2x regression of `shared_loop_qps` at
   batch size 8 between the previous artifact and the fresh one.
2. **Fleet scaling** (schema 4) — fails (exit 1) if the current artifact's E15
   fleet-scaling experiment shows the 4-deployment / 4-thread fleet delivering
   less than 1.5x the qps of the 4-deployment / 1-thread run.  This gate only
   runs where it can physically pass: the artifact records the host's core
   count, and hosts with fewer than 2 cores skip it (announced, see below).

Plus two **warn-only** checks:

3. **Serve latency** (schema 5) — never fails the build; prints the E16
   serve-latency numbers for the trajectory log, warns if the experiment is
   missing (pre-schema-5 artifact) and warns loudly if the run recorded any
   wire protocol errors (the loadgen's own exit code is the hard gate there).
4. **Store time travel** (schema 6) — never fails the build; prints the E17
   durable-window numbers (per-cadence snapshot footprint, AS OF latency,
   baseline-serving savings), warns if the experiment is missing
   (pre-schema-6 artifact) and warns loudly if the recorded run's AS OF or
   baseline answers diverged from the live ones (the `store_cells` and bench
   unit suites are the hard gates there).

Everything else passes (exit 0), but the skip paths are **announced**, never
silent: each one emits a GitHub Actions `::warning::` annotation so a
trajectory that quietly stopped being checked (missing artifact, artifact-fetch
step broken, schema drift, single-core runner) shows up on the workflow run
instead of looking like a pass:

* no previous artifact (the trajectory starts empty — or the fetch broke),
* either artifact unreadable or in an unknown schema,
* no batch-8 row (smoke-sized PR runs only sweep small batches),
* no fleet-scaling experiment (pre-schema-4 artifact),
* missing 4-deployment rows, or a single-core host,
* no serve-latency experiment (pre-schema-5 artifact),
* no store-timetravel experiment (pre-schema-6 artifact).

Understands the schema-2/3/4/5/6 merged documents ({"schema": N, "experiments":
[...]}) and the original flat e12 document ({"experiment":
"engine-throughput", ...}).
"""

import json
import sys

REGRESSION_FACTOR = 2.0
BATCH = 8

# The E15 acceptance gate: at this many deployments, this many threads must
# deliver at least MIN_FLEET_SPEEDUP x the single-thread qps.
FLEET_DEPLOYMENTS = 4
FLEET_THREADS = 4
MIN_FLEET_SPEEDUP = 1.5
MIN_CORES_FOR_SCALING = 2


def warn_skip(reason):
    """Announce a skipped comparison as a CI warning annotation (stdout, where the
    Actions runner picks `::warning::` lines up), then as a plain log line."""
    print(f"::warning title=bench trend check skipped::{reason}")
    print(f"trend check: {reason}, skipping")


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError):
        return None


def experiment(doc, name):
    """The named experiment object of either artifact schema, or None."""
    if not isinstance(doc, dict):
        return None
    for entry in doc.get("experiments", [doc]):
        if isinstance(entry, dict) and entry.get("experiment") == name:
            return entry
    return None


def experiment_rows(doc, name):
    entry = experiment(doc, name)
    if entry is None:
        return None
    rows = entry.get("rows")
    return rows if isinstance(rows, list) else None


def shared_qps_at_batch(doc, batch):
    rows = experiment_rows(doc, "engine-throughput")
    if rows is None:
        return None
    for row in rows:
        if isinstance(row, dict) and row.get("batch") == batch:
            qps = row.get("shared_loop_qps")
            return float(qps) if isinstance(qps, (int, float)) else None
    return None


def fleet_qps(doc, deployments, threads):
    rows = experiment_rows(doc, "fleet-scaling")
    if rows is None:
        return None
    for row in rows:
        if (
            isinstance(row, dict)
            and row.get("deployments") == deployments
            and row.get("threads") == threads
        ):
            qps = row.get("qps")
            return float(qps) if isinstance(qps, (int, float)) else None
    return None


def check_regression(previous_path, current_path):
    """Gate 1: the cross-merge shared-loop throughput trajectory."""
    previous = shared_qps_at_batch(load(previous_path), BATCH)
    current = shared_qps_at_batch(load(current_path), BATCH)
    if previous is None or previous <= 0.0:
        warn_skip(
            f"no prior batch-{BATCH} shared-loop throughput in {previous_path} to "
            "compare against (first run of the trajectory, or the artifact fetch broke)"
        )
        return 0
    if current is None:
        warn_skip(f"current artifact {current_path} has no batch-{BATCH} row (smoke-sized run)")
        return 0
    ratio = previous / current if current > 0.0 else float("inf")
    print(
        f"trend check: shared-loop qps at batch {BATCH}: "
        f"previous {previous:.2f}, current {current:.2f} ({ratio:.2f}x slower)"
    )
    if ratio > REGRESSION_FACTOR:
        print(
            f"trend check: FAIL — shared-loop qps regressed more than "
            f"{REGRESSION_FACTOR}x at batch {BATCH}",
            file=sys.stderr,
        )
        return 1
    return 0


def check_fleet_scaling(current_path):
    """Gate 2 (schema 4): the E15 multi-core scaling floor, current artifact only."""
    doc = load(current_path)
    entry = experiment(doc, "fleet-scaling")
    if entry is None:
        warn_skip(
            f"current artifact {current_path} has no fleet-scaling experiment "
            "(pre-schema-4 artifact, or e15 was not run)"
        )
        return 0
    cores = entry.get("cores")
    if not isinstance(cores, int) or cores < MIN_CORES_FOR_SCALING:
        warn_skip(
            f"fleet scaling gate needs a host with >= {MIN_CORES_FOR_SCALING} cores, "
            f"artifact records cores={cores!r} — a {FLEET_THREADS}-thread pool cannot "
            "beat 1 thread without cores to fan out to"
        )
        return 0
    single = fleet_qps(doc, FLEET_DEPLOYMENTS, 1)
    pooled = fleet_qps(doc, FLEET_DEPLOYMENTS, FLEET_THREADS)
    if single is None or single <= 0.0 or pooled is None:
        warn_skip(
            f"fleet-scaling experiment lacks the {FLEET_DEPLOYMENTS}-deployment rows at "
            f"1 and {FLEET_THREADS} threads"
        )
        return 0
    speedup = pooled / single
    print(
        f"trend check: fleet qps at {FLEET_DEPLOYMENTS} deployments: "
        f"1 thread {single:.2f}, {FLEET_THREADS} threads {pooled:.2f} "
        f"({speedup:.2f}x, floor {MIN_FLEET_SPEEDUP}x, {cores} cores)"
    )
    if speedup < MIN_FLEET_SPEEDUP:
        print(
            f"trend check: FAIL — the {FLEET_THREADS}-thread fleet delivers less than "
            f"{MIN_FLEET_SPEEDUP}x the single-thread qps at {FLEET_DEPLOYMENTS} "
            "deployments",
            file=sys.stderr,
        )
        return 1
    return 0


def check_serve_latency(current_path):
    """Check 3 (schema 5, warn-only): the E16 wire front-end latency record.

    Never fails the build — the loadgen binary itself exits non-zero on protocol
    errors, so this check only keeps the trajectory log honest: print the
    percentiles per op, and warn (not fail) when the experiment is missing or the
    recorded run saw protocol errors."""
    doc = load(current_path)
    entry = experiment(doc, "serve-latency")
    if entry is None:
        warn_skip(
            f"current artifact {current_path} has no serve-latency experiment "
            "(pre-schema-5 artifact, or e16 was not run)"
        )
        return 0
    errors = entry.get("protocol_errors")
    if not isinstance(errors, int) or errors > 0:
        print(
            "::warning title=serve latency recorded protocol errors::"
            f"E16 recorded protocol_errors={errors!r}; the wire layer must stay clean"
        )
    rows = experiment_rows(doc, "serve-latency") or []
    for row in rows:
        if isinstance(row, dict):
            print(
                "trend check: serve latency "
                f"{row.get('op')}: p50 {row.get('p50_ms')} ms, "
                f"p99 {row.get('p99_ms')} ms ({row.get('count')} samples)"
            )
    print(
        f"trend check: serve run admitted {entry.get('admitted')} / rejected "
        f"{entry.get('rejected')} of {entry.get('connections')} connections, "
        f"protocol_errors {errors}"
    )
    return 0


def check_store_timetravel(current_path):
    """Check 4 (schema 6, warn-only): the E17 durable-window / AS OF record.

    Never fails the build — the `store_cells` byte-identity suite and the bench
    unit test are the hard gates on correctness; this check keeps the trajectory
    log honest: print the per-cadence snapshot footprint and AS OF latency plus
    the baseline-serving savings, and warn (not fail) when the experiment is
    missing or the recorded run saw any answer diverge from the live one."""
    doc = load(current_path)
    entry = experiment(doc, "store-timetravel")
    if entry is None:
        warn_skip(
            f"current artifact {current_path} has no store-timetravel experiment "
            "(pre-schema-6 artifact, or e17 was not run)"
        )
        return 0
    rows = experiment_rows(doc, "store-timetravel") or []
    for row in rows:
        if isinstance(row, dict):
            print(
                "trend check: store time travel "
                f"cadence {row.get('cadence')}: {row.get('snapshots')} snapshots, "
                f"{row.get('stored_bytes')} stored bytes, "
                f"{row.get('pages_written')} pages written, "
                f"as-of {row.get('as_of_ms')} ms"
            )
            if row.get("as_of_matches_live") is not True:
                print(
                    "::warning title=AS OF answer diverged from live::"
                    f"E17 cadence {row.get('cadence')} recorded "
                    f"as_of_matches_live={row.get('as_of_matches_live')!r}; "
                    "checkpointed time travel must reproduce the live answer"
                )
    serving = entry.get("baseline_serving")
    if isinstance(serving, dict):
        print(
            "trend check: baseline serving saved "
            f"{serving.get('saved_energy_pct')}% substrate energy "
            f"(sessions {serving.get('session_uj')} uJ vs replay "
            f"{serving.get('replay_uj')} uJ)"
        )
        if serving.get("answers_identical") is not True:
            print(
                "::warning title=baseline sessions diverged from replay::"
                f"E17 recorded answers_identical={serving.get('answers_identical')!r}; "
                "engine-served baselines must match the per-submit replay"
            )
    return 0


def main(argv):
    if len(argv) != 3:
        print(f"usage: {argv[0]} PREVIOUS_JSON CURRENT_JSON", file=sys.stderr)
        return 0  # misconfiguration must not block CI
    status = check_regression(argv[1], argv[2])
    status = check_fleet_scaling(argv[2]) or status
    status = check_serve_latency(argv[2]) or status
    status = check_store_timetravel(argv[2]) or status
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
