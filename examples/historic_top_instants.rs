//! Historic Top-K: "find the K time instances with the highest average temperature".
//!
//! Every node buffers its readings locally in a sliding window; the query is vertically
//! fragmented (each node holds one column of every epoch), so KSpot routes it to the TJA
//! algorithm, whose three phases (Lower Bound, Hierarchical Join, Clean-Up) avoid
//! shipping the whole windows to the base station.
//!
//! Run with: `cargo run --example historic_top_instants`

use kspot::core::{KSpotServer, ScenarioConfig, WorkloadSpec};
use kspot::net::{Deployment, RoomModelParams};

fn main() {
    // A 36-node deployment monitoring one physical phenomenon (temperature), so that
    // interesting time instances are interesting network-wide.
    let deployment = Deployment::grid(6, 12.0, Some(1));
    let scenario = ScenarioConfig::custom("warehouse temperature grid", "temperature", deployment);
    let server = KSpotServer::new(scenario)
        .with_workload(WorkloadSpec::RoomCorrelated(RoomModelParams {
            drift_sigma: 3.0,
            sensor_noise_sigma: 1.5,
        }))
        .with_seed(42);

    let sql = "SELECT TOP 5 epoch, AVG(temperature) FROM sensors GROUP BY epoch EPOCH DURATION 1 h WITH HISTORY 14 days";
    println!("query: {sql}\n");

    let execution = server.submit(sql, 0).expect("the historic query executes");
    println!("algorithm routed to: {}\n", execution.algorithm);

    let answer = execution.latest().expect("one answer");
    println!("the 5 hottest time instances of the last 14 days (hourly epochs):");
    for (rank, item) in answer.items.iter().enumerate() {
        println!("  #{:<2} epoch {:>4}  average {:.2}", rank + 1, item.key, item.value);
    }

    println!("\n{}", execution.panel);
    if let Some(savings) = execution.panel.savings_vs("centralized window collection") {
        println!(
            "\nTJA transmitted {:.1}% fewer bytes than collecting every buffered sample ({}x reduction)",
            savings.byte_savings_pct(),
            savings.byte_reduction_factor() as u64
        );
    }
}
