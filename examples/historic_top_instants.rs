//! Historic Top-K: "find the K time instances with the highest average temperature".
//!
//! Every node buffers its readings in a sliding window; the query is vertically
//! fragmented (each node holds one column of every epoch), so KSpot routes it to the
//! TJA algorithm, whose three phases (Lower Bound, Hierarchical Join, Clean-Up) avoid
//! shipping the whole windows to the base station.
//!
//! Since ADR-005 historic queries register as ordinary engine *sessions*: the engine
//! maintains ONE shared sliding window per node — fed once per epoch for every
//! registered historic query — and the session answers the moment the windows cover
//! its `WITH HISTORY` span.  No per-submission collection replay, and co-registered
//! historic queries amortise both the maintenance and (with frame batching) the
//! per-frame radio overhead.
//!
//! Run with: `cargo run --example historic_top_instants`

use kspot::core::{KSpotServer, ScenarioConfig, SessionStatus, WorkloadSpec};
use kspot::net::{Deployment, RoomModelParams};

fn main() {
    // A 36-node deployment monitoring one physical phenomenon (temperature), so that
    // interesting time instances are interesting network-wide.
    let deployment = Deployment::grid(6, 12.0, Some(1));
    let scenario = ScenarioConfig::custom("warehouse temperature grid", "temperature", deployment);
    let server = KSpotServer::new(scenario)
        .with_workload(WorkloadSpec::RoomCorrelated(RoomModelParams {
            drift_sigma: 3.0,
            sensor_noise_sigma: 1.5,
        }))
        .with_seed(42);

    let window = 14 * 24; // 14 days of hourly epochs
    let sql = "SELECT TOP 5 epoch, AVG(temperature) FROM sensors GROUP BY epoch EPOCH DURATION 1 h WITH HISTORY 14 days";
    println!("query: {sql}\n");

    // Frame batching on: the co-registered historic sessions below piggy-back their
    // protocol reports into merged frames on top of sharing the window maintenance.
    let mut engine = server.engine().with_frame_batching(true);
    let hottest = engine.register(sql).expect("the historic query registers as a session");
    // A second user watches the same two weeks with a different K — it rides the SAME
    // shared windows; only its own protocol traffic is extra.
    let runner_up = engine
        .register("SELECT TOP 3 epoch, AVG(temperature) FROM sensors GROUP BY epoch EPOCH DURATION 1 h WITH HISTORY 14 days")
        .expect("a second historic session admits");

    // Live the two weeks: the engine feeds every node's shared window once per epoch;
    // both sessions answer the epoch their span is covered, then complete.
    engine.run_epochs(window);
    assert_eq!(hottest.status(), SessionStatus::Completed);
    assert_eq!(runner_up.status(), SessionStatus::Completed);

    println!("algorithm routed to: {}\n", hottest.algorithm());
    let answer = hottest.latest().expect("one answer");
    println!("the 5 hottest time instances of the last 14 days (hourly epochs):");
    for (rank, item) in answer.items.iter().enumerate() {
        println!("  #{:<2} epoch {:>4}  average {:.2}", rank + 1, item.key, item.value);
    }

    // Per-session attribution still works with shared windows and merged frames:
    // each session is charged its own protocol traffic, while the maintenance cost is
    // charged once for everyone.
    let a = hottest.totals();
    let b = runner_up.totals();
    println!("\nper-session attributed traffic over the shared substrate:");
    println!("  top-5 session: {:>8} B in {:>4} frames", a.bytes, a.messages);
    println!("  top-3 session: {:>8} B in {:>4} frames", b.bytes, b.messages);
    println!(
        "  shared window maintenance (paid once for both): {:.1} mJ over {window} epochs",
        engine.window_maintenance_energy_uj() / 1000.0
    );

    println!("\n{}", hottest.finalize().panel);
}
