//! Quickstart: the paper's Figure-1 running example, end to end, on the unified
//! `Session` API.
//!
//! A 4-room building is monitored by 9 sensors; the user asks for the single room with
//! the highest average sound level.  The example registers the query as a session on
//! the engine, streams its per-epoch answers, and shows why naive in-network pruning
//! would have answered wrongly.
//!
//! Run with: `cargo run --example quickstart`

use kspot::core::{KSpotServer, ScenarioConfig, WorkloadSpec};

fn main() {
    // The Configuration Panel: the Figure-1 scenario (rooms A-D, sensors s1-s9).
    let scenario = ScenarioConfig::figure1();
    println!(
        "scenario: {} ({} sensors in {} rooms)\n",
        scenario.name,
        scenario.deployment.num_nodes(),
        scenario.num_clusters()
    );

    // The Query Panel: the paper's running example, verbatim, registered as a Session
    // on the long-lived engine — the single submission surface for every query class.
    let sql = "SELECT TOP 1 roomid, AVERAGE(sound) FROM sensors GROUP BY roomid EPOCH DURATION 1 min";
    println!("query: {sql}\n");

    let server = KSpotServer::new(scenario).with_workload(WorkloadSpec::Figure1);
    let mut engine = server.engine();
    let mut session = engine.register(sql).expect("the running example registers");
    engine.run_epochs(10);

    // The Display Panel: poll() drains the answers produced since the last poll; the
    // KSpot bullet renders the highest-ranked room.
    println!("algorithm routed to: {}", session.algorithm());
    let answers = session.poll();
    assert_eq!(answers.len(), 10, "ten epochs produced ten answers");
    for bullet in server.bullets(answers.last().expect("ten answers")) {
        println!("KSpot bullet: {bullet}");
    }
    println!();

    // The System Panel, per session: the query's own attributed slice of the shared
    // ledger (totals and per-phase table).  The deprecated one-shot facade
    // (`KSpotServer::submit`) still attaches the TAG/centralized comparison runs for
    // callers that want the savings read-outs — see `examples/conference_rooms.rs`.
    let execution = session.finalize();
    println!("{}", execution.panel);

    // The anecdote of Figure 1: the naive strategy would have answered (D, 76.5).
    println!("\nremember: naive per-node top-1 pruning would report room D with 76.5,");
    println!("because node s4 wrongly eliminates the (D, 39) tuple of node s9 — the");
    println!("correct answer, reported above, is room C with an average of 75.");
}
