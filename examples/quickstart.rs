//! Quickstart: the paper's Figure-1 running example, end to end.
//!
//! A 4-room building is monitored by 9 sensors; the user asks for the single room with
//! the highest average sound level.  The example shows why naive in-network pruning gets
//! the answer wrong, and how KSpot's MINT-based execution gets it right while spending
//! less radio traffic than TAG.
//!
//! Run with: `cargo run --example quickstart`

use kspot::core::{KSpotServer, ScenarioConfig, WorkloadSpec};

fn main() {
    // The Configuration Panel: the Figure-1 scenario (rooms A-D, sensors s1-s9).
    let scenario = ScenarioConfig::figure1();
    println!("scenario: {} ({} sensors in {} rooms)\n", scenario.name, scenario.deployment.num_nodes(), scenario.num_clusters());

    // The Query Panel: the paper's running example, verbatim.
    let sql = "SELECT TOP 1 roomid, AVERAGE(sound) FROM sensors GROUP BY roomid EPOCH DURATION 1 min";
    println!("query: {sql}\n");

    let server = KSpotServer::new(scenario).with_workload(WorkloadSpec::Figure1);
    let execution = server.submit(sql, 10).expect("the running example executes");

    // The Display Panel: the KSpot bullet for the highest-ranked room.
    let latest = execution.latest().expect("ten epochs produced answers");
    println!("algorithm routed to: {}", execution.algorithm);
    for bullet in server.bullets(latest) {
        println!("KSpot bullet: {bullet}");
    }
    println!();

    // The System Panel: savings against the conventional acquisition strategies.
    println!("{}", execution.panel);

    // The anecdote of Figure 1: the naive strategy would have answered (D, 76.5).
    println!("\nremember: naive per-node top-1 pruning would report room D with 76.5,");
    println!("because node s4 wrongly eliminates the (D, 39) tuple of node s9 — the");
    println!("correct answer, reported above, is room C with an average of 75.");
}
