//! Accuracy study: how often does naive greedy pruning get the ranking wrong, and what
//! does exactness cost KSpot?
//!
//! The example replays many randomized clustered deployments, grades the naive strategy
//! and MINT against the omniscient reference, and reports accuracy next to the tuple
//! traffic each strategy used — the quantitative version of the Figure-1 anecdote.
//!
//! Run with: `cargo run --release --example accuracy_study`

use kspot::algos::snapshot::{exact_reference, run_continuous, AccuracyReport};
use kspot::algos::{MintViews, NaiveLocalPrune, SnapshotSpec, TagTopK};
use kspot::net::rng::{topology_seed, workload_seed};
use kspot::net::types::ValueDomain;
use kspot::net::{Deployment, Network, NetworkConfig, RoomModelParams, Workload};
use kspot::query::AggFunc;

fn main() {
    let scenarios = 100;
    let epochs = 10;
    let mut naive_reports = Vec::new();
    let mut mint_reports = Vec::new();
    let mut naive_tuples = 0u64;
    let mut mint_tuples = 0u64;
    let mut tag_tuples = 0u64;

    for seed in 0..scenarios {
        let rooms = 3 + (seed % 6) as usize;
        let k = 1 + (seed % 3) as usize;
        // `seed` is the scenario's master seed; the topology and the workload draw
        // from distinct derived streams (the kspot-net seeding convention).
        let d = Deployment::clustered_rooms(rooms, 3, 20.0, topology_seed(seed));
        let spec = SnapshotSpec::new(k.min(rooms), AggFunc::Avg, ValueDomain::percentage());
        let params = RoomModelParams { drift_sigma: 2.0, sensor_noise_sigma: 1.0 };
        let workload =
            || Workload::room_correlated(&d, ValueDomain::percentage(), params, workload_seed(seed));

        let reference: Vec<_> = {
            let mut w = workload();
            (0..epochs).map(|_| exact_reference(&spec, &w.next_epoch())).collect()
        };

        let mut net = Network::new(d.clone(), NetworkConfig::ideal());
        let results = run_continuous(&mut NaiveLocalPrune::new(spec), &mut net, &mut workload(), epochs);
        naive_reports.push(AccuracyReport::grade(&results, &reference));
        naive_tuples += net.metrics().totals().tuples;

        let mut net = Network::new(d.clone(), NetworkConfig::ideal());
        let results = run_continuous(&mut MintViews::new(spec), &mut net, &mut workload(), epochs);
        mint_reports.push(AccuracyReport::grade(&results, &reference));
        mint_tuples += net.metrics().totals().tuples;

        let mut net = Network::new(d.clone(), NetworkConfig::ideal());
        run_continuous(&mut TagTopK::new(spec), &mut net, &mut workload(), epochs);
        tag_tuples += net.metrics().totals().tuples;
    }

    let summarise = |reports: &[AccuracyReport]| {
        let n = reports.len() as f64;
        (
            100.0 * reports.iter().map(|r| r.ranking_accuracy()).sum::<f64>() / n,
            100.0 * reports.iter().map(|r| r.mean_recall).sum::<f64>() / n,
        )
    };
    let (naive_rank, naive_recall) = summarise(&naive_reports);
    let (mint_rank, mint_recall) = summarise(&mint_reports);

    println!("accuracy over {scenarios} randomized clustered scenarios ({epochs} epochs each):\n");
    println!("  strategy              exact ranking   recall    tuples shipped");
    println!("  --------------------  -------------   ------    --------------");
    println!("  naive local pruning        {naive_rank:6.1}%   {naive_recall:6.1}%    {naive_tuples:>10}");
    println!("  KSpot (MINT views)         {mint_rank:6.1}%   {mint_recall:6.1}%    {mint_tuples:>10}");
    println!("  TAG + sink Top-K            100.0%    100.0%    {tag_tuples:>10}");
    println!();
    println!("naive pruning is cheap but wrong a measurable fraction of the time;");
    println!("KSpot keeps the answer exact while still shipping fewer tuples than TAG.");
}
