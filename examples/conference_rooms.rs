//! The demo plan of Section IV: continuously identify the K conference rooms with the
//! highest sound level so that attendees can spot the liveliest discussions at a glance.
//!
//! The example runs the Figure-3 scenario (14 sensors in 6 clusters) for a few minutes of
//! simulated time, prints the rolling Top-3 ranking with its KSpot bullets, and finishes
//! with the System Panel that the demo projects on the wall.
//!
//! Run with: `cargo run --example conference_rooms`
//!
//! This example deliberately drives the deprecated one-shot facade
//! (`KSpotServer::submit`): it is the System Panel walk-through, and the panel's
//! baseline comparison runs (TAG, centralized collection) are exactly what the facade
//! adds on top of the `Session` API.  For the session-first workflow see
//! `examples/multi_query.rs` and `examples/quickstart.rs`.
#![allow(deprecated)]

use kspot::core::{KSpotServer, ScenarioConfig, WorkloadSpec};
use kspot::net::RoomModelParams;

fn main() {
    let scenario = ScenarioConfig::conference();
    let server = KSpotServer::new(scenario)
        .with_workload(WorkloadSpec::RoomCorrelated(RoomModelParams {
            drift_sigma: 2.5,
            sensor_noise_sigma: 1.0,
        }))
        .with_seed(2009);

    let sql = "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid EPOCH DURATION 1 min LIFETIME 2 h";
    println!("query: {sql}\n");

    let epochs = 120; // two hours at one-minute epochs
    let execution = server.submit(sql, epochs).expect("the conference query executes");

    println!("continuous Top-3 ranking (one line per 10 minutes):");
    for (i, result) in execution.results.iter().enumerate() {
        if i % 10 != 0 {
            continue;
        }
        let bullets: Vec<String> = server.bullets(result).iter().map(|b| b.to_string()).collect();
        println!("  minute {:>3}: {}", i, bullets.join("  |  "));
    }

    println!("\n{}", execution.panel);
    if let Some(savings) = execution.panel.savings_vs("centralized collection") {
        println!(
            "\nversus shipping every tuple to the base station, KSpot transmitted {:.1}% fewer bytes",
            savings.byte_savings_pct()
        );
    }
}
