//! The multi-query engine in action: several users monitor one live conference venue
//! at once, each with their own query, sharing a single epoch loop and substrate —
//! continuous and `WITH HISTORY` queries alike, through one `Session` API.
//!
//! ```console
//! cargo run --release --example multi_query
//! ```

use kspot::core::{QueryEngine, ScenarioConfig, Session, SessionStatus};

fn main() {
    let mut engine = QueryEngine::new(ScenarioConfig::conference()).with_seed(42);

    // Four users register their queries; each gets a typed Session handle.  The same
    // `register` call admits every query class: the historic query joins the loop
    // too, answers once from the engine-shared sliding windows when they cover its
    // WITH HISTORY span, and completes (no per-submit collection replay).
    let mut loudest_rooms = engine
        .register("SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid")
        .expect("snapshot Top-K admits");
    let mut all_rooms = engine
        .register("SELECT roomid, AVG(sound) FROM sensors GROUP BY roomid")
        .expect("plain aggregation admits");
    let hot_nodes = engine
        .register("SELECT TOP 2 nodeid, sound FROM sensors LIFETIME 10 epochs")
        .expect("node monitoring admits");
    let hottest_instants = engine
        .register("SELECT TOP 3 epoch, AVG(sound) FROM sensors GROUP BY epoch WITH HISTORY 20 epochs")
        .expect("historic queries admit too");

    // One shared loop serves all of them: readings are acquired once per epoch, the
    // fixed substrate cost is charged once, and the sliding windows every historic
    // session answers from are fed once — not once per query.
    engine.run_epochs(15);

    // poll() drains the answers produced since the handle's last poll.
    println!("after 15 epochs, the loudest rooms produced {} new answers", loudest_rooms.poll().len());

    // A user walks away mid-stream; the others are unaffected (their answers are
    // byte-identical to what they would see running alone — see ADR-003/ADR-005).
    all_rooms.cancel();
    engine.run_epochs(15);

    println!("\nafter 30 shared epochs:");
    for session in engine.sessions() {
        let totals = session.totals();
        println!("  session {} [{:?}] {}", session.id(), session.status(), session.sql());
        println!(
            "    {} answers; attributed traffic: {} msgs, {} B, {:.1} mJ",
            session.results().len(),
            totals.messages,
            totals.bytes,
            totals.energy_uj / 1000.0
        );
        if let Some(latest) = session.latest() {
            println!("    latest: {latest}");
        }
    }

    assert_eq!(hot_nodes.status(), SessionStatus::Completed, "LIFETIME elapsed");
    assert_eq!(
        hottest_instants.status(),
        SessionStatus::Completed,
        "the historic session answered from the shared windows and completed"
    );
    assert_eq!(hottest_instants.results().len(), 1, "historic sessions answer exactly once");
    assert_eq!(loudest_rooms.results().len(), 30);

    // The per-query slices plus the unscoped per-epoch substrate baseline (and the
    // shared window-maintenance cost, charged once per epoch for ALL historic
    // sessions) make up the whole ledger.
    let grand = engine.metrics().totals();
    println!(
        "shared substrate grand total: {} msgs, {} B, {:.1} mJ (window maintenance: {:.1} mJ)",
        grand.messages,
        grand.bytes,
        grand.energy_uj / 1000.0,
        engine.window_maintenance_energy_uj() / 1000.0
    );

    // --- cross-query frame batching (ADR-004) ------------------------------------
    // Re-run the same sessions with the frame scheduler off and on: with batching,
    // every node's per-epoch reports across all sessions leave as ONE merged frame
    // (one preamble + header instead of one per session).  The venue is lossless, so
    // every session's answers are byte-identical either way — only the overhead
    // disappears.
    let replay = |batched: bool| {
        let mut engine = QueryEngine::new(ScenarioConfig::conference())
            .with_seed(42)
            .with_frame_batching(batched);
        let sessions: Vec<Session> = [
            "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid",
            "SELECT roomid, AVG(sound) FROM sensors GROUP BY roomid",
            "SELECT TOP 2 nodeid, sound FROM sensors",
        ]
        .iter()
        .map(|sql| engine.register(sql).expect("admits"))
        .collect();
        engine.run_epochs(30);
        let answers: Vec<_> = sessions.iter().map(|s| s.results()).collect();
        let per_session: Vec<u64> = sessions.iter().map(|s| s.totals().bytes).collect();
        let total = engine.metrics().totals().bytes;
        (answers, per_session, total)
    };
    let (plain_answers, plain_bytes, plain_total) = replay(false);
    let (batched_answers, batched_bytes, batched_total) = replay(true);
    assert_eq!(plain_answers, batched_answers, "lossless batching never changes answers");

    println!("\nframe batching (30 epochs, same sessions, same answers):");
    println!("  {:<12} {:>14} {:>14}", "session", "bytes (off)", "bytes (on)");
    for (i, (off, on)) in plain_bytes.iter().zip(&batched_bytes).enumerate() {
        println!("  session {i:<4} {off:>14} {on:>14}");
    }
    let saved = 100.0 * (1.0 - batched_total as f64 / plain_total as f64);
    println!("  {:<12} {plain_total:>14} {batched_total:>14}  ({saved:.1}% saved)", "total");
    assert!(batched_total < plain_total, "merged frames must shed overhead");
}
