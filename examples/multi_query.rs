//! The multi-query engine in action: several users monitor one live conference venue
//! at once, each with their own query, sharing a single epoch loop and substrate.
//!
//! ```console
//! cargo run --release --example multi_query
//! ```

use kspot::core::{QueryEngine, ScenarioConfig, SessionStatus};

fn main() {
    let mut engine = QueryEngine::new(ScenarioConfig::conference()).with_seed(42);

    // Three users register their queries; each gets a session id.
    let loudest_rooms = engine
        .register("SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid")
        .expect("snapshot Top-K admits");
    let all_rooms = engine
        .register("SELECT roomid, AVG(sound) FROM sensors GROUP BY roomid")
        .expect("plain aggregation admits");
    let hot_nodes = engine
        .register("SELECT TOP 2 nodeid, sound FROM sensors LIFETIME 10 epochs")
        .expect("node monitoring admits");

    // One shared loop serves all of them: readings are acquired once per epoch and the
    // fixed substrate cost is charged once, not once per query.
    engine.run_epochs(15);

    // A user walks away mid-stream; the others are unaffected (their answers are
    // byte-identical to what they would see running alone — see ADR-003).
    engine.cancel(all_rooms);
    engine.run_epochs(15);

    println!("after 30 shared epochs:");
    for id in engine.session_ids() {
        let sql = engine.sql(id).unwrap();
        let status = engine.status(id).unwrap();
        let answers = engine.results(id).unwrap().len();
        let totals = engine.query_totals(id);
        println!("  session {id} [{status:?}] {sql}");
        println!(
            "    {answers} answers; attributed traffic: {} msgs, {} B, {:.1} mJ",
            totals.messages,
            totals.bytes,
            totals.energy_uj / 1000.0
        );
        if let Some(latest) = engine.latest(id) {
            println!("    latest: {latest}");
        }
    }

    assert_eq!(engine.status(hot_nodes), Some(SessionStatus::Completed), "LIFETIME elapsed");
    assert_eq!(engine.results(loudest_rooms).unwrap().len(), 30);

    // The per-query slices plus the unscoped per-epoch substrate baseline make up the
    // whole ledger.
    let grand = engine.metrics().totals();
    println!(
        "shared substrate grand total: {} msgs, {} B, {:.1} mJ",
        grand.messages,
        grand.bytes,
        grand.energy_uj / 1000.0
    );

    // --- cross-query frame batching (ADR-004) ------------------------------------
    // Re-run the same three sessions with the frame scheduler off and on: with
    // batching, every node's per-epoch reports across all sessions leave as ONE
    // merged frame (one preamble + header instead of one per session).  The venue is
    // lossless, so every session's answers are byte-identical either way — only the
    // overhead disappears.
    let replay = |batched: bool| {
        let mut engine = QueryEngine::new(ScenarioConfig::conference())
            .with_seed(42)
            .with_frame_batching(batched);
        let ids: Vec<_> = [
            "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid",
            "SELECT roomid, AVG(sound) FROM sensors GROUP BY roomid",
            "SELECT TOP 2 nodeid, sound FROM sensors",
        ]
        .iter()
        .map(|sql| engine.register(sql).expect("admits"))
        .collect();
        engine.run_epochs(30);
        let answers: Vec<_> = ids.iter().map(|&id| engine.results(id).unwrap().to_vec()).collect();
        let per_session: Vec<u64> = ids.iter().map(|&id| engine.query_totals(id).bytes).collect();
        (answers, per_session, engine.metrics().totals().bytes)
    };
    let (plain_answers, plain_bytes, plain_total) = replay(false);
    let (batched_answers, batched_bytes, batched_total) = replay(true);
    assert_eq!(plain_answers, batched_answers, "lossless batching never changes answers");

    println!("\nframe batching (30 epochs, same sessions, same answers):");
    println!("  {:<12} {:>14} {:>14}", "session", "bytes (off)", "bytes (on)");
    for (i, (off, on)) in plain_bytes.iter().zip(&batched_bytes).enumerate() {
        println!("  session {i:<4} {off:>14} {on:>14}");
    }
    let saved = 100.0 * (1.0 - batched_total as f64 / plain_total as f64);
    println!("  {:<12} {plain_total:>14} {batched_total:>14}  ({saved:.1}% saved)", "total");
    assert!(batched_total < plain_total, "merged frames must shed overhead");
}
